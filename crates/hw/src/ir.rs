//! The shared op-stream IR: the one vocabulary both the server's batch
//! scheduler and the board/cluster pipeline schedulers consume.
//!
//! A serving layer lowers its queued requests into a flat [`OpStream`]
//! of [`IrOp`]s — each op carrying *what* to execute ([`OpKind`]),
//! *where* its operands live (host memory vs board DRAM), *whose* key
//! material it needs (the session id doubles as the key identity), and
//! *which* earlier ops it depends on (handle write→read edges). The
//! stream is then transformed by IR passes — today,
//! [`OpStream::fuse_rotations`], which merges same-session rotations of
//! one input into hoisted [`OpKind::RotateMany`] groups exactly the way
//! the paper's hoisting shares one RNS decomposition — and the *same*
//! fused stream drives both the functional executor and the modeled
//! schedulers ([`schedule_stream`](crate::scheduler::PipelineConfig::schedule_stream),
//! [`cluster`](crate::cluster)). There is no second, model-only stream
//! reconstruction anywhere: what the machine model prices is exactly
//! what the server runs.
//!
//! ```
//! use heax_hw::ir::{IrOp, OpKind, OpStream};
//!
//! // Three rotations of one parked input by session 7, then a write
//! // that overwrites the input: the first three fuse, the write stays.
//! let mut stream = OpStream::new();
//! for _ in 0..3 {
//!     stream.push(IrOp::new(OpKind::Rotate).with_session(7).with_parked_input().with_input_id(1));
//! }
//! stream.push(IrOp::new(OpKind::Fetch).with_session(7).with_output_id(1));
//! let fused = stream.fuse_rotations();
//! assert_eq!(fused.ops.len(), 2);
//! assert!(matches!(fused.ops[0].kind, OpKind::RotateMany { count: 3, .. }));
//! assert_eq!(fused.members[0], vec![0, 1, 2]);
//! ```

/// Sentinel for "no dependency" in [`IrOp::deps`].
pub const NO_DEP: u32 = u32::MAX;

/// The high-level operation kinds an op stream is made of — the
/// server-side CKKS vocabulary, one entry per distinct machine cost.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpKind {
    /// Homomorphic multiply: MULT module pass plus the relinearization
    /// KeySwitch (the Table 8 composite).
    Multiply,
    /// Relinearize a 3-component ciphertext: one KeySwitch.
    Relinearize,
    /// Single slot rotation: the Galois permutation is free addressing;
    /// one KeySwitch.
    Rotate,
    /// Hoisted multi-rotation group: the input is decomposed once (one
    /// full KeySwitch interval), each further rotation pays only the
    /// DyadMult-accumulate + modulus-switch tail.
    RotateMany {
        /// Rotations in the group (≥ 1).
        count: usize,
        /// How many of the group's outputs stay parked in board DRAM;
        /// the remaining `count − parked_outputs` return over PCIe.
        /// Must not exceed `count`.
        parked_outputs: usize,
    },
    /// Rescale by the last active prime: the modulus-switch tail
    /// (INTT1 → NTT1 → MS) without the decomposition stages.
    Rescale,
    /// Ciphertext movement with no compute: an inline operand uploads
    /// host→board (optionally parking there); a parked operand ships
    /// board→host.
    Fetch,
    /// Component-wise ciphertext addition on the dyadic cores.
    Add,
}

/// One operation of an op stream: a kind plus where its operands live,
/// where its result goes, whose key material it uses, and what it
/// depends on.
///
/// The identity fields are what the batch and cluster schedulers key
/// on; a bare executor is free to ignore them:
///
/// * `session` — key/tenant identity (`0` = anonymous). Two ops with
///   the same session share ksk residency on a board.
/// * `input_id` — identity of the first operand (`0` = anonymous). Two
///   same-session rotations with equal non-zero `input_id` are
///   fusion candidates.
/// * `output_id` — handle the result is parked under (`0` = none).
///   A write to a handle an open rotation group reads closes that
///   group (in-order semantics across handle reuse).
/// * `deps` — up to two indices of earlier stream ops whose results
///   this op consumes ([`NO_DEP`] = unused slot). The board scheduler
///   will not start this op's compute before its deps' compute ends.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IrOp {
    /// What to execute.
    pub kind: OpKind,
    /// Owning session / key identity (`0` = anonymous).
    pub session: u64,
    /// Operands are already board-resident (no host→board transfer).
    pub input_parked: bool,
    /// The result stays in board DRAM (no board→host transfer).
    pub park_output: bool,
    /// The op's key-switching key must first be uploaded host→board
    /// (set by the cluster router on a residency miss; charged as
    /// extra host→board DMA by the board scheduler).
    pub ksk_upload: bool,
    /// Identity of the first operand (`0` = anonymous).
    pub input_id: u64,
    /// Handle id the result parks under (`0` = none).
    pub output_id: u64,
    /// The inline input arrived as a **seeded** fresh encryption (wire
    /// v2): a 32-byte seed replaced the uniform `a` component, so the
    /// host→board transfer carries one polynomial instead of two. The
    /// board scheduler halves the ciphertext-shaped input volume.
    pub input_seeded: bool,
    /// Residue limbs of a wire-returned reply after compression (`0` =
    /// full chain). A client that only decrypts needs a single limb;
    /// the server modulus-switches before serializing and the board
    /// scheduler scales the board→host volume by `reply_limbs / k`.
    pub reply_limbs: u8,
    /// Indices of earlier ops this op reads results of ([`NO_DEP`] =
    /// unused slot).
    pub deps: [u32; 2],
}

impl IrOp {
    /// An anonymous op with host-resident operands and a host-returned
    /// result.
    pub fn new(kind: OpKind) -> Self {
        Self {
            kind,
            session: 0,
            input_parked: false,
            park_output: false,
            ksk_upload: false,
            input_id: 0,
            output_id: 0,
            input_seeded: false,
            reply_limbs: 0,
            deps: [NO_DEP; 2],
        }
    }

    /// Shorthand for a hoisted group of `count` rotations, all results
    /// returning over PCIe.
    pub fn rotate_many(count: usize) -> Self {
        Self::new(OpKind::RotateMany {
            count,
            parked_outputs: 0,
        })
    }

    /// Marks the operands as already board-resident.
    #[must_use]
    pub fn with_parked_input(mut self) -> Self {
        self.input_parked = true;
        self
    }

    /// Marks the result as staying in board DRAM.
    #[must_use]
    pub fn with_parked_output(mut self) -> Self {
        self.park_output = true;
        self
    }

    /// Tags the op with its owning session / key identity.
    #[must_use]
    pub fn with_session(mut self, session: u64) -> Self {
        self.session = session;
        self
    }

    /// Tags the op's first operand identity (for fusion).
    #[must_use]
    pub fn with_input_id(mut self, id: u64) -> Self {
        self.input_id = id;
        self
    }

    /// Tags the handle id the result parks under.
    #[must_use]
    pub fn with_output_id(mut self, id: u64) -> Self {
        self.output_id = id;
        self
    }

    /// Marks the op as needing its ksk uploaded first.
    #[must_use]
    pub fn with_ksk_upload(mut self) -> Self {
        self.ksk_upload = true;
        self
    }

    /// Marks the inline input as a seeded fresh encryption (half the
    /// host→board bytes).
    #[must_use]
    pub fn with_seeded_input(mut self) -> Self {
        self.input_seeded = true;
        self
    }

    /// Sets the compressed reply width in residue limbs (`0` = full
    /// chain).
    #[must_use]
    pub fn with_reply_limbs(mut self, limbs: u8) -> Self {
        self.reply_limbs = limbs;
        self
    }

    /// Records a dependency on the stream op at `index` (first free
    /// slot; silently dropped when both slots are taken or the edge is
    /// already recorded).
    #[must_use]
    pub fn with_dep(mut self, index: u32) -> Self {
        if self.deps.contains(&index) {
            return self;
        }
        if let Some(slot) = self.deps.iter_mut().find(|d| **d == NO_DEP) {
            *slot = index;
        }
        self
    }

    /// Client-visible requests this op answers (a hoisted group answers
    /// one per rotation).
    pub fn requests(&self) -> u64 {
        match self.kind {
            OpKind::RotateMany { count, .. } => count as u64,
            _ => 1,
        }
    }

    /// Whether executing this op consumes a key-switching key (and thus
    /// cares about ksk residency when routed across a cluster).
    pub fn needs_ksk(&self) -> bool {
        matches!(
            self.kind,
            OpKind::Multiply | OpKind::Relinearize | OpKind::Rotate | OpKind::RotateMany { .. }
        )
    }

    /// The recorded dependency indices (0–2 of them).
    pub fn dep_indices(&self) -> impl Iterator<Item = usize> + '_ {
        self.deps
            .iter()
            .filter(|&&d| d != NO_DEP)
            .map(|&d| d as usize)
    }
}

/// A flat, submission-ordered op stream — the IR a serving layer lowers
/// its queued requests into, one [`IrOp`] per request.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct OpStream {
    /// The ops, submission order.
    pub ops: Vec<IrOp>,
}

impl OpStream {
    /// An empty stream.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one op.
    pub fn push(&mut self, op: IrOp) {
        self.ops.push(op);
    }

    /// Ops in the stream.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the stream is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The distinct non-anonymous session ids in the stream, ascending —
    /// the population a fault-schedule generator draws ksk-corruption
    /// targets from ([`crate::faults::FaultPlan::generate`]).
    pub fn session_ids(&self) -> Vec<u64> {
        session_ids(&self.ops)
    }

    /// The rotation-fusion IR pass.
    ///
    /// Same-session [`OpKind::Rotate`] ops reading the same non-anonymous
    /// input (equal `input_id`, equal placement) merge into one hoisted
    /// [`OpKind::RotateMany`] op at the *first* member's stream position:
    /// one RNS decomposition, one cheap tail per extra rotation —
    /// the paper's hoisting, applied batch-wide. A group closes when a
    /// later same-session op parks its result over the handle the group
    /// reads (`output_id` equals the group's parked `input_id`):
    /// rotations submitted after the overwrite start a fresh group and
    /// observe the new value, so in-order semantics hold across handle
    /// reuse. Anonymous rotations (`input_id == 0`) never fuse.
    ///
    /// Dependency edges are remapped onto the fused indices; a parked
    /// group output is counted in `parked_outputs` so the scheduler
    /// charges PCIe only for wire-returned results.
    pub fn fuse_rotations(&self) -> FusedStream {
        struct Group {
            session: u64,
            parked: bool,
            input_id: u64,
            first: usize,
            members: Vec<usize>,
            open: bool,
        }
        let mut groups: Vec<Group> = Vec::new();
        for (idx, op) in self.ops.iter().enumerate() {
            if op.kind == OpKind::Rotate {
                let found = op.input_id != 0 && {
                    if let Some(g) = groups.iter_mut().find(|g| {
                        g.open
                            && g.session == op.session
                            && g.parked == op.input_parked
                            && g.input_id == op.input_id
                    }) {
                        g.members.push(idx);
                        true
                    } else {
                        false
                    }
                };
                if !found {
                    groups.push(Group {
                        session: op.session,
                        parked: op.input_parked,
                        input_id: op.input_id,
                        first: idx,
                        members: vec![idx],
                        open: op.input_id != 0,
                    });
                }
            }
            if op.output_id != 0 {
                for g in groups
                    .iter_mut()
                    .filter(|g| g.session == op.session && g.parked && g.input_id == op.output_id)
                {
                    g.open = false;
                }
            }
        }

        // Emit in first-member order; every original index maps to one
        // fused index so dependency edges can be rewritten.
        let mut ops = Vec::with_capacity(self.ops.len());
        let mut members = Vec::with_capacity(self.ops.len());
        let mut fused_index = vec![0usize; self.ops.len()];
        for (idx, op) in self.ops.iter().enumerate() {
            if op.kind == OpKind::Rotate {
                let Some(g) = groups.iter().find(|g| g.first == idx) else {
                    continue; // non-first member, emitted with its group
                };
                let fused = if g.members.len() == 1 {
                    *op
                } else {
                    let parked_outputs = g
                        .members
                        .iter()
                        .filter(|&&i| self.ops[i].park_output)
                        .count();
                    let mut merged = IrOp {
                        kind: OpKind::RotateMany {
                            count: g.members.len(),
                            parked_outputs,
                        },
                        park_output: false,
                        output_id: 0,
                        ..*op
                    };
                    for &m in &g.members {
                        for d in self.ops[m].dep_indices() {
                            merged = merged.with_dep(d as u32);
                        }
                    }
                    merged
                };
                for &m in &g.members {
                    fused_index[m] = ops.len();
                }
                ops.push(fused);
                members.push(g.members.clone());
            } else {
                fused_index[idx] = ops.len();
                ops.push(*op);
                members.push(vec![idx]);
            }
        }
        for (i, op) in ops.iter_mut().enumerate() {
            let mut deps = [NO_DEP; 2];
            let mut n = 0;
            for d in 0..2 {
                let old = op.deps[d];
                if old == NO_DEP {
                    continue;
                }
                let new = fused_index[old as usize] as u32;
                // A member's dep can land inside its own group after
                // remapping; the group's shared input covers it.
                if new as usize == i || deps.contains(&new) {
                    continue;
                }
                deps[n] = new;
                n += 1;
            }
            op.deps = deps;
        }
        FusedStream { ops, members }
    }
}

/// The result of [`OpStream::fuse_rotations`]: the fused stream plus,
/// for each fused op, the original stream indices it answers —
/// the executor's map from fused ops back to queued requests.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FusedStream {
    /// The fused ops, original-first-member order.
    pub ops: Vec<IrOp>,
    /// For each fused op, the original stream indices it covers (a
    /// non-fused op covers exactly its own index).
    pub members: Vec<Vec<usize>>,
}

impl FusedStream {
    /// Total client-visible requests across the stream.
    pub fn requests(&self) -> u64 {
        self.ops.iter().map(IrOp::requests).sum()
    }
}

/// The distinct non-anonymous session ids in an op slice, ascending.
pub fn session_ids(ops: &[IrOp]) -> Vec<u64> {
    let mut ids: Vec<u64> = ops
        .iter()
        .map(|op| op.session)
        .filter(|&s| s != 0)
        .collect();
    ids.sort_unstable();
    ids.dedup();
    ids
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rot(session: u64, input_id: u64) -> IrOp {
        IrOp::new(OpKind::Rotate)
            .with_session(session)
            .with_parked_input()
            .with_input_id(input_id)
    }

    #[test]
    fn builders_compose() {
        let op = IrOp::new(OpKind::Rotate)
            .with_session(9)
            .with_parked_input()
            .with_parked_output()
            .with_input_id(3)
            .with_output_id(4)
            .with_ksk_upload()
            .with_dep(0)
            .with_dep(0) // duplicate: dropped
            .with_dep(5);
        assert_eq!(op.session, 9);
        assert!(op.input_parked && op.park_output && op.ksk_upload);
        assert!(!op.input_seeded);
        assert_eq!(op.reply_limbs, 0);
        let v2 = IrOp::new(OpKind::Rotate)
            .with_seeded_input()
            .with_reply_limbs(1);
        assert!(v2.input_seeded);
        assert_eq!(v2.reply_limbs, 1);
        assert_eq!((op.input_id, op.output_id), (3, 4));
        assert_eq!(op.deps, [0, 5]);
        assert_eq!(op.dep_indices().collect::<Vec<_>>(), vec![0, 5]);
        // A third distinct dep has nowhere to go.
        assert_eq!(op.with_dep(7).deps, [0, 5]);
        assert!(op.needs_ksk());
        assert!(!IrOp::new(OpKind::Rescale).needs_ksk());
        assert_eq!(IrOp::rotate_many(4).requests(), 4);
        assert_eq!(IrOp::new(OpKind::Add).requests(), 1);
    }

    #[test]
    fn same_input_rotations_fuse_per_session() {
        let mut s = OpStream::new();
        s.push(rot(1, 10));
        s.push(rot(2, 10)); // same input id, other session: no fusion
        s.push(rot(1, 10));
        s.push(rot(1, 11)); // other input: own group
        let f = s.fuse_rotations();
        assert_eq!(f.ops.len(), 3);
        assert!(matches!(
            f.ops[0].kind,
            OpKind::RotateMany {
                count: 2,
                parked_outputs: 0
            }
        ));
        assert_eq!(f.ops[0].session, 1);
        assert_eq!(f.members[0], vec![0, 2]);
        assert_eq!(f.ops[1].kind, OpKind::Rotate);
        assert_eq!(f.requests(), 4);
    }

    #[test]
    fn anonymous_rotations_never_fuse() {
        let mut s = OpStream::new();
        s.push(IrOp::new(OpKind::Rotate).with_session(1));
        s.push(IrOp::new(OpKind::Rotate).with_session(1));
        let f = s.fuse_rotations();
        assert_eq!(f.ops.len(), 2);
        assert!(f.ops.iter().all(|op| op.kind == OpKind::Rotate));
    }

    #[test]
    fn handle_overwrite_closes_the_group() {
        let mut s = OpStream::new();
        s.push(rot(1, 5));
        s.push(rot(1, 5));
        // Same session parks over handle 5: the open group closes.
        s.push(IrOp::new(OpKind::Fetch).with_session(1).with_output_id(5));
        s.push(rot(1, 5)); // fresh group, observes the new value
        s.push(rot(1, 5));
        let f = s.fuse_rotations();
        assert_eq!(f.ops.len(), 3);
        assert!(matches!(f.ops[0].kind, OpKind::RotateMany { count: 2, .. }));
        assert_eq!(f.ops[1].kind, OpKind::Fetch);
        assert!(matches!(f.ops[2].kind, OpKind::RotateMany { count: 2, .. }));
        assert_eq!(f.members[2], vec![3, 4]);
        // An overwrite by *another* session closes nothing.
        let mut s2 = OpStream::new();
        s2.push(rot(1, 5));
        s2.push(IrOp::new(OpKind::Fetch).with_session(2).with_output_id(5));
        s2.push(rot(1, 5));
        assert_eq!(s2.fuse_rotations().ops.len(), 2);
    }

    #[test]
    fn rotation_parking_counts_into_the_group() {
        let mut s = OpStream::new();
        s.push(rot(1, 5));
        s.push(rot(1, 5).with_parked_output().with_output_id(6));
        s.push(rot(1, 5).with_parked_output().with_output_id(7));
        let f = s.fuse_rotations();
        assert_eq!(f.ops.len(), 1);
        assert!(matches!(
            f.ops[0].kind,
            OpKind::RotateMany {
                count: 3,
                parked_outputs: 2
            }
        ));
        // A lone parked rotation keeps its flags (no group wrapper).
        let mut s1 = OpStream::new();
        s1.push(rot(1, 5).with_parked_output().with_output_id(6));
        let f1 = s1.fuse_rotations();
        assert_eq!(f1.ops[0].kind, OpKind::Rotate);
        assert!(f1.ops[0].park_output);
    }

    #[test]
    fn deps_are_remapped_onto_fused_indices() {
        let mut s = OpStream::new();
        // 0: upload-and-park handle 5.
        s.push(IrOp::new(OpKind::Fetch).with_session(1).with_output_id(5));
        // 1+2: rotations reading it (fuse; dep on op 0).
        s.push(rot(1, 5).with_dep(0));
        s.push(rot(1, 5).with_dep(0));
        // 3: add reading a rotation's parked result — dep on op 2.
        s.push(
            IrOp::new(OpKind::Add)
                .with_session(1)
                .with_parked_input()
                .with_dep(2),
        );
        let f = s.fuse_rotations();
        assert_eq!(f.ops.len(), 3);
        assert_eq!(f.ops[1].deps, [0, NO_DEP]); // merged group deps deduplicated
        assert_eq!(f.ops[2].deps, [1, NO_DEP]); // old index 2 → fused index 1
    }
}
