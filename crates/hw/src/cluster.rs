//! Multi-board cluster scheduler: a front-end router over N modeled
//! HEAX boards, each with its own cores, PCIe DMA channels, DRAM and
//! key-switching-key residency.
//!
//! The paper evaluates one board; a rack serving millions of sessions
//! is N of them behind a router, and the resource that decides where a
//! request should run is not compute — every board has the same cores —
//! but *state*: a session's ksk (2.6 MB at Set-B, 9.4 MB at Set-C,
//! versus a 0.5 MB ciphertext) and its DRAM-parked intermediates. The
//! router therefore models exactly that:
//!
//! * **Session→board affinity** ([`RoutingPolicy::Affinity`]): a
//!   key-consuming op routes to a board that already holds the
//!   session's ksk (a *routing hit*); a cold session lands on the
//!   least-loaded board and pays one key replication (a *miss*,
//!   [`ClusterReport::replication_bytes`], plus the PCIe upload charged
//!   in that board's schedule via [`IrOp::ksk_upload`]).
//! * **Work stealing**: when the session's resident board has run far
//!   enough ahead of the least-loaded board (beyond
//!   [`ClusterConfig::steal_threshold_cycles`]), the op is stolen to
//!   the idle board anyway — replicating the key there — trading
//!   replication bandwidth for tail latency.
//! * **Parked-state pinning**: DRAM is per-board, so every op that
//!   reads or writes a session's parked handles is pinned to the board
//!   that holds them, regardless of policy.
//! * **[`RoutingPolicy::Random`]** is the control: hash-spraying ops
//!   across boards maximizes replication and is what the affinity
//!   policy is benchmarked against (`bench_cluster`).
//!
//! Each board's assigned sub-stream is then scheduled by the
//! single-board [`PipelineConfig::schedule_stream`]; boards run in
//! parallel, so the cluster makespan is the slowest board's. The
//! answer is a [`ClusterReport`]: per-board pipeline reports and
//! utilization, routing hit/miss counts, steal counts, replication
//! bytes, and dropped cross-board dependency edges.
//!
//! ```
//! use heax_hw::board::Board;
//! use heax_hw::cluster::{ClusterConfig, RoutingPolicy};
//! use heax_hw::ir::IrOp;
//! use heax_hw::keyswitch_pipeline::KeySwitchArch;
//! use heax_hw::mult_dataflow::MultModuleConfig;
//! use heax_hw::scheduler::PipelineConfig;
//!
//! # fn main() -> Result<(), heax_hw::HwError> {
//! let arch = KeySwitchArch {
//!     n: 8192, k: 4, nc_intt0: 16, m0: 4, nc_ntt0: 16,
//!     num_dyad: 5, nc_dyad: 8, nc_intt1: 4, nc_ntt1: 16, nc_ms: 4,
//! };
//! let board = PipelineConfig::new(
//!     &Board::stratix10(), arch, MultModuleConfig::new(8192, 16)?, 2)?;
//! let cluster = ClusterConfig::new(board, 2)?;
//! // Two sessions, four hoisted groups each: affinity keeps each
//! // session's key on one board.
//! let ops: Vec<IrOp> = (0..8)
//!     .map(|i| IrOp::rotate_many(4).with_session(1 + i % 2))
//!     .collect();
//! let report = cluster.schedule_stream(&ops, RoutingPolicy::Affinity { steal: false })?;
//! assert_eq!(report.routing_misses, 2); // one cold miss per session
//! assert_eq!(report.routing_hits, 6);
//! # Ok(())
//! # }
//! ```

use std::collections::HashMap;

use crate::faults::{BoardFaultProfile, FaultKind, FaultPlan};
use crate::ir::IrOp;
use crate::scheduler::{PipelineConfig, PipelineReport};
use crate::xfer::DramModel;
use crate::HwError;

/// How the front-end router picks a board for each op.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RoutingPolicy {
    /// Route key-consuming ops to a board already holding the session's
    /// ksk (least-loaded such board); cold sessions land on the
    /// least-loaded board overall.
    Affinity {
        /// Allow stealing a warm session's op to the least-loaded
        /// board (replicating its key) when the resident board is
        /// ahead by more than the configured threshold.
        steal: bool,
    },
    /// Spray ops across boards with a seeded LCG — the no-affinity
    /// control that pays replication on nearly every routing decision.
    Random {
        /// Deterministic seed.
        seed: u64,
    },
}

impl RoutingPolicy {
    /// Stable policy label (snapshot schemas key on it).
    pub fn name(&self) -> &'static str {
        match self {
            RoutingPolicy::Affinity { .. } => "affinity",
            RoutingPolicy::Random { .. } => "random",
        }
    }
}

/// Static configuration of a modeled board cluster: N identical boards,
/// each scheduled by its own [`PipelineConfig`].
#[derive(Clone, Debug, PartialEq)]
pub struct ClusterConfig {
    /// Boards in the cluster (1 ..= 64).
    pub num_boards: usize,
    /// The per-board pipeline configuration (cores, PCIe, DRAM, arch).
    pub board: PipelineConfig,
    /// Load imbalance (in compute cycles) beyond which
    /// [`RoutingPolicy::Affinity`] with stealing moves a warm session's
    /// op to the least-loaded board.
    pub steal_threshold_cycles: u64,
}

impl ClusterConfig {
    /// Builds a cluster of `num_boards` replicas of `board`, with the
    /// steal threshold defaulting to four KeySwitch intervals (one
    /// board must be a few heavy ops ahead before replication pays).
    ///
    /// # Errors
    ///
    /// [`HwError::InvalidConfig`] unless `1 <= num_boards <= 64` (ksk
    /// residency is tracked in a 64-bit board mask).
    pub fn new(board: PipelineConfig, num_boards: usize) -> Result<Self, HwError> {
        if num_boards == 0 || num_boards > 64 {
            return Err(HwError::InvalidConfig {
                reason: format!("cluster needs 1..=64 boards, got {num_boards}"),
            });
        }
        let steal_threshold_cycles = 4 * board.arch.steady_interval_cycles();
        Ok(Self {
            num_boards,
            board,
            steal_threshold_cycles,
        })
    }

    /// Builder option: the work-stealing imbalance threshold, cycles.
    #[must_use]
    pub fn with_steal_threshold(mut self, cycles: u64) -> Self {
        self.steal_threshold_cycles = cycles;
        self
    }

    /// Bytes of one session's key-switching key at this configuration —
    /// the unit of [`ClusterReport::replication_bytes`].
    pub fn ksk_bytes(&self) -> u64 {
        DramModel::ksk_bits(self.board.arch.n, self.board.arch.k) / 8
    }

    /// Routes an op stream across the boards and schedules each board's
    /// sub-stream on its own pipeline.
    ///
    /// Routing walks the stream in order, maintaining per-session ksk
    /// residency (a board mask), per-session parked-state pinning, and
    /// per-board load estimates; see the module docs for the policy
    /// semantics. A dependency edge whose producer landed on another
    /// board cannot be expressed inside a single board's schedule — it
    /// is dropped and counted in [`ClusterReport::cross_board_deps`]
    /// (the modeled makespan is optimistic by exactly those edges).
    ///
    /// # Errors
    ///
    /// [`HwError::InvalidConfig`] for malformed ops (propagated from
    /// the board scheduler).
    pub fn schedule_stream(
        &self,
        ops: &[IrOp],
        policy: RoutingPolicy,
    ) -> Result<ClusterReport, HwError> {
        self.schedule_stream_faulted(ops, policy, &FaultPlan::none())
    }

    /// [`ClusterConfig::schedule_stream`] replaying an injected
    /// [`FaultPlan`] with graceful degradation:
    ///
    /// * a **crashed** board is drained from the routing table once its
    ///   modeled load reaches the event cycle — resident sessions fail
    ///   over to a healthy board (the ksk re-replication is billed
    ///   through the normal byte accounting), and parked state is
    ///   re-materialized from the host (the session re-pins to its new
    ///   board and the first parked read pays the upload again);
    /// * a **corrupted** resident ksk is detected by checksum mismatch
    ///   on the session's next key-consuming op on that board, evicted,
    ///   and re-uploaded;
    /// * **slow-down, link-stall and DMA faults** fold into a per-board
    ///   [`BoardFaultProfile`] that dilates the board's schedule (and
    ///   its load accounting, so degraded boards naturally receive less
    ///   new work) instead of wedging it.
    ///
    /// Faults reshape placement and timing only — every op is still
    /// scheduled exactly once, so a faulted schedule answers the same
    /// requests as the fault-free one. An empty plan is bit-identical
    /// to [`ClusterConfig::schedule_stream`] (which delegates here).
    ///
    /// # Errors
    ///
    /// [`HwError::InvalidConfig`] for malformed ops, a fault event
    /// naming a board outside the cluster, or a plan that crashes
    /// *every* board before the stream completes.
    pub fn schedule_stream_faulted(
        &self,
        ops: &[IrOp],
        policy: RoutingPolicy,
        plan: &FaultPlan,
    ) -> Result<ClusterReport, HwError> {
        let n = self.num_boards;
        if let Some(e) = plan.events.iter().find(|e| e.board >= n) {
            return Err(HwError::InvalidConfig {
                reason: format!(
                    "fault event names board {} but the cluster has {n}",
                    e.board
                ),
            });
        }
        let crash_at: Vec<Option<u64>> = (0..n).map(|b| plan.crash_cycle(b)).collect();
        let profiles: Vec<BoardFaultProfile> = (0..n).map(|b| plan.board_profile(b)).collect();
        // Pending corruption events: (board, session, trigger cycle).
        let mut corruptions: Vec<(usize, u64, u64)> = plan
            .events
            .iter()
            .filter_map(|e| match e.kind {
                FaultKind::KskCorruption { session } => Some((e.board, session, e.at_cycle)),
                _ => None,
            })
            .collect();

        let mut alive = vec![true; n];
        let mut residency: HashMap<u64, u64> = HashMap::new();
        let mut parked_home: HashMap<u64, usize> = HashMap::new();
        // Sessions that lost ksk residency / parked state to a crash
        // and have not yet recovered.
        let mut failover_pending: std::collections::HashSet<u64> = Default::default();
        let mut rehome_pending: std::collections::HashSet<u64> = Default::default();
        let mut load = vec![0u64; n];
        let mut streams: Vec<Vec<IrOp>> = vec![Vec::new(); n];
        // Global stream index -> (board, position in its sub-stream).
        let mut placed: Vec<(usize, u32)> = Vec::with_capacity(ops.len());
        let mut assignment = Vec::with_capacity(ops.len());
        let mut rng = match policy {
            RoutingPolicy::Random { seed } => seed ^ 0x9E37_79B9_7F4A_7C15,
            _ => 0,
        };
        let (mut hits, mut misses, mut steals, mut cross_deps) = (0u64, 0u64, 0u64, 0u64);
        let mut replication_bytes = 0u64;
        let (mut failovers, mut re_replications, mut corrupt_evictions) = (0u64, 0u64, 0u64);
        let (mut parked_remats, mut recovery_cycles) = (0u64, 0u64);
        let ksk_upload = self.board.ksk_upload_cycles();

        for op in ops {
            let compute = self.board.op_compute_cycles(op)?;

            // Liveness sweep: a board whose accumulated load reached its
            // crash cycle is drained from the routing table — resident
            // sessions fail over, parked state must re-materialize.
            for b in 0..n {
                if alive[b] && crash_at[b].is_some_and(|c| load[b] >= c) {
                    alive[b] = false;
                    for (&session, bits) in residency.iter_mut() {
                        if *bits >> b & 1 == 1 {
                            *bits &= !(1u64 << b);
                            failover_pending.insert(session);
                        }
                    }
                    let orphaned: Vec<u64> = parked_home
                        .iter()
                        .filter(|&(_, &home)| home == b)
                        .map(|(&s, _)| s)
                        .collect();
                    for session in orphaned {
                        parked_home.remove(&session);
                        rehome_pending.insert(session);
                    }
                }
            }
            if alive.iter().all(|&a| !a) {
                return Err(HwError::InvalidConfig {
                    reason: "fault plan crashes every board before the stream completes".into(),
                });
            }

            let least_loaded = |load: &[u64], alive: &[bool]| {
                (0..n)
                    .filter(|&b| alive[b])
                    .min_by_key(|&b| (load[b], b))
                    .expect("at least one board alive")
            };
            // Parked state is per-board DRAM: once a session parks
            // anything, every op touching its parked handles is pinned
            // to that board, whatever the policy says.
            let touches = op.session != 0 && touches_parked(op);
            let pinned = if touches {
                parked_home.get(&op.session).copied()
            } else {
                None
            };
            let board = if let Some(b) = pinned {
                b
            } else {
                match policy {
                    RoutingPolicy::Affinity { steal } => {
                        let bits = if op.session == 0 {
                            0
                        } else {
                            residency.get(&op.session).copied().unwrap_or(0)
                        };
                        if op.needs_ksk() && bits != 0 {
                            let resident = (0..n)
                                .filter(|&b| alive[b] && bits >> b & 1 == 1)
                                .min_by_key(|&b| (load[b], b));
                            match resident {
                                Some(resident) => {
                                    let idle = least_loaded(&load, &alive);
                                    if steal
                                        && load[resident].saturating_sub(load[idle])
                                            > self.steal_threshold_cycles
                                    {
                                        steals += 1;
                                        idle
                                    } else {
                                        resident
                                    }
                                }
                                None => least_loaded(&load, &alive),
                            }
                        } else {
                            least_loaded(&load, &alive)
                        }
                    }
                    RoutingPolicy::Random { .. } => {
                        rng = rng
                            .wrapping_mul(6_364_136_223_846_793_005)
                            .wrapping_add(1_442_695_040_888_963_407);
                        let living: Vec<usize> = (0..n).filter(|&b| alive[b]).collect();
                        living[((rng >> 33) as usize) % living.len()]
                    }
                }
            };
            let mut routed = *op;
            if touches {
                parked_home.entry(op.session).or_insert(board);
                // Parked inputs lost to a crash re-materialize from the
                // host: the first parked read after the failover ships
                // the operand over PCIe again.
                if rehome_pending.remove(&op.session) {
                    parked_remats += 1;
                    routed.input_parked = false;
                }
            }

            // Key residency: a key-consuming op either finds its ksk on
            // the chosen board (hit) or replicates it there first
            // (miss: bytes over the host link + an upload charged in
            // the board's own schedule). A resident copy whose checksum
            // no longer matches is evicted and re-uploaded on the spot.
            if op.needs_ksk() {
                let mut resident = op.session != 0
                    && residency.get(&op.session).copied().unwrap_or(0) >> board & 1 == 1;
                let mut evicted_here = false;
                if resident {
                    if let Some(pos) = corruptions
                        .iter()
                        .position(|&(b, s, at)| b == board && s == op.session && load[board] >= at)
                    {
                        // Checksum mismatch: evict and re-upload.
                        corruptions.swap_remove(pos);
                        corrupt_evictions += 1;
                        re_replications += 1;
                        recovery_cycles = recovery_cycles.saturating_add(ksk_upload);
                        replication_bytes = replication_bytes.saturating_add(self.ksk_bytes());
                        routed = routed.with_ksk_upload();
                        resident = false;
                        evicted_here = true;
                        // The re-uploaded copy is resident again.
                        if let Some(bits) = residency.get_mut(&op.session) {
                            *bits |= 1 << board;
                        }
                    }
                }
                if resident {
                    hits += 1;
                } else if !evicted_here {
                    misses += 1;
                    replication_bytes = replication_bytes.saturating_add(self.ksk_bytes());
                    routed = routed.with_ksk_upload();
                    if op.session != 0 {
                        *residency.entry(op.session).or_insert(0) |= 1 << board;
                    }
                    // A miss for a session that lost its resident copy
                    // to a crash is a failover recovery.
                    if failover_pending.remove(&op.session) {
                        failovers += 1;
                        re_replications += 1;
                        recovery_cycles = recovery_cycles.saturating_add(ksk_upload);
                    }
                }
            }

            // Remap dependency edges into the board-local sub-stream;
            // a producer on another board cannot be expressed there.
            let mut local = IrOp {
                deps: [crate::ir::NO_DEP; 2],
                ..routed
            };
            for d in routed.dep_indices() {
                let (dep_board, dep_pos) = placed[d];
                if dep_board == board {
                    local = local.with_dep(dep_pos);
                } else {
                    cross_deps += 1;
                }
            }

            placed.push((board, streams[board].len() as u32));
            assignment.push(board);
            streams[board].push(local);
            // Degraded boards accrue dilated load, so the router's
            // balancing naturally steers new work away from them.
            load[board] += BoardFaultProfile::dilate(compute, profiles[board].compute_slowdown_pct);
        }

        let boards = streams
            .iter()
            .zip(&profiles)
            .map(|(s, profile)| self.board.schedule_stream_degraded(s, profile))
            .collect::<Result<Vec<_>, _>>()?;
        let total_cycles = boards.iter().map(|r| r.total_cycles).max().unwrap_or(0);
        Ok(ClusterReport {
            num_boards: n,
            cores_per_board: self.board.num_cores,
            freq_mhz: self.board.freq_mhz,
            policy: policy.name(),
            boards,
            assignment,
            routing_hits: hits,
            routing_misses: misses,
            steals,
            replication_bytes,
            cross_board_deps: cross_deps,
            total_cycles,
            board_alive: alive,
            failovers,
            re_replications,
            corrupt_ksk_evictions: corrupt_evictions,
            parked_rematerializations: parked_remats,
            recovery_cycles,
        })
    }
}

/// Whether an op reads or writes per-board parked DRAM state.
fn touches_parked(op: &IrOp) -> bool {
    op.input_parked
        || op.park_output
        || op.output_id != 0
        || matches!(op.kind, crate::ir::OpKind::RotateMany { parked_outputs, .. } if parked_outputs > 0)
}

/// The cluster scheduler's answer: per-board pipeline reports plus the
/// routing outcome (hits, misses, steals, replication, dropped edges).
#[derive(Clone, Debug)]
pub struct ClusterReport {
    /// Boards in the cluster.
    pub num_boards: usize,
    /// HEAX cores per board.
    pub cores_per_board: usize,
    /// Board clock in MHz.
    pub freq_mhz: f64,
    /// Routing policy label (`"affinity"` / `"random"`).
    pub policy: &'static str,
    /// Per-board pipeline reports (some may be empty).
    pub boards: Vec<PipelineReport>,
    /// Board each stream op was routed to, stream order.
    pub assignment: Vec<usize>,
    /// Key-consuming ops that found their ksk resident.
    pub routing_hits: u64,
    /// Key-consuming ops that had to replicate their ksk first.
    pub routing_misses: u64,
    /// Warm-session ops stolen to a less-loaded board.
    pub steals: u64,
    /// Total key bytes replicated across the host link.
    pub replication_bytes: u64,
    /// Dependency edges dropped because producer and consumer landed on
    /// different boards.
    pub cross_board_deps: u64,
    /// Cluster makespan: the slowest board's, in cycles (boards run in
    /// parallel).
    pub total_cycles: u64,
    /// Per-board health at the end of the run (`false` = crashed and
    /// drained from the routing table).
    pub board_alive: Vec<bool>,
    /// Sessions that lost their resident ksk to a board crash and
    /// recovered on a healthy board.
    pub failovers: u64,
    /// Key re-replications forced by faults (failover recoveries plus
    /// corruption re-uploads).
    pub re_replications: u64,
    /// Resident ksk copies evicted after a checksum mismatch.
    pub corrupt_ksk_evictions: u64,
    /// Parked operands re-materialized from the host after their home
    /// board crashed.
    pub parked_rematerializations: u64,
    /// Modeled cycles spent on fault recovery (the PCIe uploads of all
    /// fault-forced key re-replications).
    pub recovery_cycles: u64,
}

impl ClusterReport {
    /// Total client requests answered across all boards.
    pub fn requests(&self) -> u64 {
        self.boards.iter().map(PipelineReport::requests).sum()
    }

    /// Cluster makespan in microseconds at the board clock.
    pub fn total_us(&self) -> f64 {
        self.total_cycles as f64 / self.freq_mhz
    }

    /// Sustained client requests per second across the cluster.
    pub fn requests_per_sec(&self) -> f64 {
        if self.total_cycles == 0 {
            return 0.0;
        }
        self.requests() as f64 / (self.total_us() / 1e6)
    }

    /// Fraction of key-consuming ops that hit resident keys.
    pub fn hit_rate(&self) -> f64 {
        let total = self.routing_hits + self.routing_misses;
        if total == 0 {
            return 0.0;
        }
        self.routing_hits as f64 / total as f64
    }

    /// One board's compute utilization against the *cluster* makespan
    /// (1.0 = that board's cores busy for the whole cluster run).
    /// Out-of-range board indices and zero-capacity reports answer 0.0
    /// rather than panicking.
    pub fn board_utilization(&self, board: usize) -> f64 {
        let capacity = (self.cores_per_board as u64).saturating_mul(self.total_cycles);
        match self.boards.get(board) {
            Some(b) if capacity > 0 => b.core_busy() as f64 / capacity as f64,
            _ => 0.0,
        }
    }

    /// Boards still alive (not crashed) at the end of the run.
    pub fn boards_alive(&self) -> usize {
        self.board_alive.iter().filter(|&&a| a).count()
    }

    /// Recovery latency in microseconds: the modeled time spent
    /// re-replicating key material after crashes and corruption.
    pub fn recovery_us(&self) -> f64 {
        self.recovery_cycles as f64 / self.freq_mhz
    }

    /// Mean per-board compute utilization against the cluster makespan.
    pub fn mean_utilization(&self) -> f64 {
        if self.num_boards == 0 {
            return 0.0;
        }
        (0..self.num_boards)
            .map(|b| self.board_utilization(b))
            .sum::<f64>()
            / self.num_boards as f64
    }

    /// Modeled compute cycles of each *stream* op, stream order —
    /// reassembled from the per-board schedules (each board preserves
    /// its sub-stream's order), so callers can attribute cost back to
    /// sessions.
    pub fn per_op_compute_cycles(&self) -> Vec<u64> {
        let mut cursor = vec![0usize; self.num_boards];
        self.assignment
            .iter()
            .map(|&b| {
                let t = &self.boards[b].ops[cursor[b]];
                cursor[b] += 1;
                t.compute.1 - t.compute.0
            })
            .collect()
    }

    /// Renders the report as a human-readable summary block.
    pub fn render(&self) -> String {
        let mut out = format!(
            "cluster: {} board(s) x {} core(s) @ {:.0} MHz [{} routing] — {} op(s) / {} request(s)\n\
             makespan {} cycles ({:.1} us) -> {:.0} requests/s\n\
             routing: {} hit(s) / {} miss(es) ({:.1}% hit), {} steal(s), {} cross-board dep(s)\n\
             key replication: {} byte(s)\n",
            self.num_boards,
            self.cores_per_board,
            self.freq_mhz,
            self.policy,
            self.assignment.len(),
            self.requests(),
            self.total_cycles,
            self.total_us(),
            self.requests_per_sec(),
            self.routing_hits,
            self.routing_misses,
            100.0 * self.hit_rate(),
            self.steals,
            self.cross_board_deps,
            self.replication_bytes,
        );
        if self.failovers + self.re_replications + self.parked_rematerializations > 0
            || self.boards_alive() < self.num_boards
        {
            out.push_str(&format!(
                "faults: {}/{} board(s) alive, {} failover(s), {} re-replication(s) \
                 ({} corrupt ksk evicted), {} parked re-materialization(s), \
                 recovery {:.1} us\n",
                self.boards_alive(),
                self.num_boards,
                self.failovers,
                self.re_replications,
                self.corrupt_ksk_evictions,
                self.parked_rematerializations,
                self.recovery_us(),
            ));
        }
        for (b, r) in self.boards.iter().enumerate() {
            out.push_str(&format!(
                "board {b}: {} op(s), {} cycles, utilization {:.1}%, bound {}{}\n",
                r.ops.len(),
                r.total_cycles,
                100.0 * self.board_utilization(b),
                r.bound(),
                if self.board_alive.get(b).copied().unwrap_or(true) {
                    ""
                } else {
                    " [CRASHED]"
                },
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::board::Board;
    use crate::ir::{IrOp, OpKind, NO_DEP};
    use crate::keyswitch_pipeline::KeySwitchArch;
    use crate::mult_dataflow::MultModuleConfig;

    fn set_b() -> KeySwitchArch {
        KeySwitchArch {
            n: 8192,
            k: 4,
            nc_intt0: 16,
            m0: 4,
            nc_ntt0: 16,
            num_dyad: 5,
            nc_dyad: 8,
            nc_intt1: 4,
            nc_ntt1: 16,
            nc_ms: 4,
        }
    }

    fn cluster(boards: usize, cores: usize) -> ClusterConfig {
        let arch = set_b();
        let mult = MultModuleConfig::new(arch.n, 16).unwrap();
        let board = PipelineConfig::new(&Board::stratix10(), arch, mult, cores).unwrap();
        ClusterConfig::new(board, boards).unwrap()
    }

    fn session_rotations(sessions: u64, per_session: usize) -> Vec<IrOp> {
        let mut ops = Vec::new();
        for i in 0..per_session {
            for s in 1..=sessions {
                ops.push(
                    IrOp::rotate_many(4)
                        .with_session(s)
                        .with_input_id(i as u64 + 1),
                );
            }
        }
        ops
    }

    #[test]
    fn board_count_is_validated() {
        let arch = set_b();
        let mult = MultModuleConfig::new(arch.n, 16).unwrap();
        let board = PipelineConfig::new(&Board::stratix10(), arch, mult, 1).unwrap();
        assert!(ClusterConfig::new(board.clone(), 0).is_err());
        assert!(ClusterConfig::new(board.clone(), 65).is_err());
        assert!(ClusterConfig::new(board, 64).is_ok());
    }

    #[test]
    fn affinity_pays_one_miss_per_session_then_hits() {
        let c = cluster(4, 1);
        let ops = session_rotations(8, 6);
        let r = c
            .schedule_stream(&ops, RoutingPolicy::Affinity { steal: false })
            .unwrap();
        assert_eq!(r.routing_misses, 8);
        assert_eq!(r.routing_hits, 8 * 6 - 8);
        assert_eq!(r.replication_bytes, 8 * c.ksk_bytes());
        assert_eq!(r.steals, 0);
        // Every session stays on exactly one board.
        for s in 0..8 {
            let boards: Vec<usize> = ops
                .iter()
                .zip(&r.assignment)
                .filter(|(op, _)| op.session == s + 1)
                .map(|(_, &b)| b)
                .collect();
            assert!(boards.windows(2).all(|w| w[0] == w[1]), "session split");
        }
        assert_eq!(r.requests(), 8 * 6 * 4);
        assert!(r.hit_rate() > 0.8);
    }

    #[test]
    fn random_routing_replicates_far_more_than_affinity() {
        let c = cluster(4, 1);
        let ops = session_rotations(8, 6);
        let affinity = c
            .schedule_stream(&ops, RoutingPolicy::Affinity { steal: false })
            .unwrap();
        let random = c
            .schedule_stream(&ops, RoutingPolicy::Random { seed: 7 })
            .unwrap();
        assert!(random.replication_bytes > 2 * affinity.replication_bytes);
        assert!(random.hit_rate() < affinity.hit_rate());
        // Functional coverage is identical either way.
        assert_eq!(random.requests(), affinity.requests());
    }

    #[test]
    fn stealing_rebalances_a_hot_session() {
        // One chatty session next to one quiet one: without stealing
        // the chatty session serializes on its home board; with it,
        // overflow ops move to the idle board at a replication cost.
        let mut ops = vec![IrOp::rotate_many(4).with_session(2).with_input_id(1)];
        for i in 0..12 {
            ops.push(IrOp::rotate_many(4).with_session(1).with_input_id(i + 1));
        }
        let c = cluster(2, 1).with_steal_threshold(1);
        let stolen = c
            .schedule_stream(&ops, RoutingPolicy::Affinity { steal: true })
            .unwrap();
        let pinned = c
            .schedule_stream(&ops, RoutingPolicy::Affinity { steal: false })
            .unwrap();
        assert!(stolen.steals > 0);
        assert_eq!(pinned.steals, 0);
        assert!(stolen.replication_bytes > pinned.replication_bytes);
        assert!(stolen.total_cycles < pinned.total_cycles);
    }

    #[test]
    fn parked_state_pins_a_session_to_its_board() {
        let c = cluster(4, 1);
        let mut ops = vec![IrOp::new(OpKind::Fetch)
            .with_session(1)
            .with_output_id(1)
            .with_parked_output()];
        // Random routing would spray these; pinning must override it.
        for _ in 0..6 {
            ops.push(
                IrOp::new(OpKind::Rotate)
                    .with_session(1)
                    .with_parked_input()
                    .with_input_id(1),
            );
        }
        let r = c
            .schedule_stream(&ops, RoutingPolicy::Random { seed: 3 })
            .unwrap();
        let home = r.assignment[0];
        assert!(r.assignment.iter().all(|&b| b == home));
    }

    #[test]
    fn cross_board_deps_are_dropped_and_counted() {
        let c = cluster(2, 1);
        let ops = vec![
            IrOp::rotate_many(2).with_session(1).with_input_id(1),
            // Session 2 lands on the other (least-loaded) board but
            // claims to read op 0's result.
            IrOp::new(OpKind::Add).with_session(2).with_dep(0),
        ];
        let r = c
            .schedule_stream(&ops, RoutingPolicy::Affinity { steal: false })
            .unwrap();
        assert_ne!(r.assignment[0], r.assignment[1]);
        assert_eq!(r.cross_board_deps, 1);
        // Same-board dep survives the remap.
        let ops2 = vec![
            IrOp::rotate_many(2).with_session(1).with_input_id(1),
            IrOp::new(OpKind::Add).with_session(1).with_dep(0),
        ];
        let one = cluster(1, 2)
            .schedule_stream(&ops2, RoutingPolicy::Affinity { steal: false })
            .unwrap();
        assert_eq!(one.cross_board_deps, 0);
        // The consumer waits for the producer despite the free core.
        let b = &one.boards[0];
        assert!(b.ops[1].compute.0 >= b.ops[0].compute.1);
        assert_eq!(b.ops[1].index, 1);
        assert_ne!(NO_DEP, 0); // sentinel sanity
    }

    #[test]
    fn more_boards_raise_throughput_on_many_sessions() {
        let ops = session_rotations(16, 4);
        let one = cluster(1, 1)
            .schedule_stream(&ops, RoutingPolicy::Affinity { steal: false })
            .unwrap();
        let four = cluster(4, 1)
            .schedule_stream(&ops, RoutingPolicy::Affinity { steal: false })
            .unwrap();
        assert!(four.requests_per_sec() > 2.0 * one.requests_per_sec());
        assert_eq!(four.requests(), one.requests());
        assert!(four.total_cycles < one.total_cycles);
    }

    #[test]
    fn empty_fault_plan_is_bit_identical_to_fault_free() {
        use crate::faults::FaultPlan;
        let c = cluster(4, 2);
        let ops = session_rotations(8, 4);
        let plain = c
            .schedule_stream(&ops, RoutingPolicy::Affinity { steal: true })
            .unwrap();
        let faulted = c
            .schedule_stream_faulted(
                &ops,
                RoutingPolicy::Affinity { steal: true },
                &FaultPlan::none(),
            )
            .unwrap();
        assert_eq!(plain.assignment, faulted.assignment);
        assert_eq!(plain.total_cycles, faulted.total_cycles);
        assert_eq!(plain.replication_bytes, faulted.replication_bytes);
        assert_eq!(plain.failovers, 0);
        assert_eq!(plain.boards_alive(), 4);
        assert_eq!(plain.recovery_cycles, 0);
    }

    #[test]
    fn crashed_board_drains_and_sessions_fail_over() {
        use crate::faults::{FaultKind, FaultPlan};
        let c = cluster(4, 1);
        let ops = session_rotations(8, 6);
        let healthy = c
            .schedule_stream(&ops, RoutingPolicy::Affinity { steal: false })
            .unwrap();
        // Board 0 dies after roughly three ops' worth of load.
        let op_cycles = c.board.op_compute_cycles(&ops[0]).unwrap();
        let plan = FaultPlan::new().with_event(0, 3 * op_cycles, FaultKind::BoardCrash);
        let faulted = c
            .schedule_stream_faulted(&ops, RoutingPolicy::Affinity { steal: false }, &plan)
            .unwrap();
        assert_eq!(faulted.board_alive, vec![false, true, true, true]);
        assert_eq!(faulted.boards_alive(), 3);
        // The two sessions resident on board 0 recovered elsewhere.
        assert_eq!(faulted.failovers, 2);
        assert!(faulted.re_replications >= 2);
        assert!(faulted.recovery_cycles > 0);
        assert!(faulted.recovery_us() > 0.0);
        // Every op still runs exactly once — coverage is unchanged.
        assert_eq!(faulted.requests(), healthy.requests());
        // Once drained, the dead board receives nothing further: its
        // assignments form a strict prefix of the stream.
        let last_dead = ops.len()
            - 1
            - faulted
                .assignment
                .iter()
                .rev()
                .position(|&b| b == 0)
                .unwrap();
        let first_after = faulted.assignment[last_dead + 1..].iter();
        assert!(first_after.clone().all(|&b| b != 0));
        assert!(
            faulted.assignment.iter().filter(|&&b| b == 0).count()
                < healthy.assignment.iter().filter(|&&b| b == 0).count()
        );
        // Graceful degradation: losing 1 of 4 boards mid-run keeps the
        // cluster above half the healthy throughput.
        let ratio = faulted.requests_per_sec() / healthy.requests_per_sec();
        assert!(ratio >= 0.55, "degraded to {ratio:.2} of healthy");
        assert!(faulted.render().contains("[CRASHED]"));
        assert!(faulted.render().contains("failover"));
    }

    #[test]
    fn corrupted_ksk_is_evicted_and_reuploaded() {
        use crate::faults::{FaultKind, FaultPlan};
        let c = cluster(1, 1);
        let ops = session_rotations(1, 4);
        // The resident copy goes bad immediately; the session's second
        // key op detects the mismatch and re-uploads.
        let plan = FaultPlan::new().with_event(0, 0, FaultKind::KskCorruption { session: 1 });
        let r = c
            .schedule_stream_faulted(&ops, RoutingPolicy::Affinity { steal: false }, &plan)
            .unwrap();
        assert_eq!(r.corrupt_ksk_evictions, 1);
        assert_eq!(r.re_replications, 1);
        assert_eq!(r.failovers, 0);
        // One cold miss + one corruption re-upload, then hits again.
        assert_eq!(r.routing_misses, 1);
        assert_eq!(r.routing_hits, 2);
        assert_eq!(r.replication_bytes, 2 * c.ksk_bytes());
        assert!(r.recovery_cycles > 0);
        // A corruption for an unknown session never fires.
        let miss_plan = FaultPlan::new().with_event(0, 0, FaultKind::KskCorruption { session: 99 });
        let clean = c
            .schedule_stream_faulted(&ops, RoutingPolicy::Affinity { steal: false }, &miss_plan)
            .unwrap();
        assert_eq!(clean.corrupt_ksk_evictions, 0);
    }

    #[test]
    fn slow_board_receives_less_work_and_stalled_links_dilate() {
        use crate::faults::{FaultKind, FaultPlan};
        let c = cluster(2, 1);
        // Anonymous ops: pure least-loaded balancing.
        let ops = vec![IrOp::rotate_many(4); 16];
        let healthy = c
            .schedule_stream(&ops, RoutingPolicy::Affinity { steal: false })
            .unwrap();
        let plan = FaultPlan::new().with_event(0, 0, FaultKind::BoardSlowdown { pct: 100 });
        let slow = c
            .schedule_stream_faulted(&ops, RoutingPolicy::Affinity { steal: false }, &plan)
            .unwrap();
        // The router sees the dilated load and steers work away.
        let on_slow = slow.assignment.iter().filter(|&&b| b == 0).count();
        let on_fast = slow.assignment.iter().filter(|&&b| b == 1).count();
        assert!(on_slow < on_fast, "{on_slow} vs {on_fast}");
        assert_eq!(slow.requests(), healthy.requests());
        assert_eq!(slow.boards_alive(), 2); // degraded, not dead
                                            // A stalled link dilates transfers instead of wedging: the
                                            // schedule still completes, just later.
        let stall = FaultPlan::new().with_event(
            0,
            0,
            FaultKind::LinkStall {
                stall_cycles: 10_000,
            },
        );
        let stalled = c
            .schedule_stream_faulted(&ops, RoutingPolicy::Affinity { steal: false }, &stall)
            .unwrap();
        assert_eq!(stalled.requests(), healthy.requests());
        assert!(stalled.total_cycles > healthy.total_cycles);
    }

    #[test]
    fn parked_state_rematerializes_after_its_home_board_crashes() {
        use crate::faults::{FaultKind, FaultPlan};
        let c = cluster(2, 1);
        let mut ops = vec![IrOp::new(OpKind::Fetch)
            .with_session(1)
            .with_output_id(1)
            .with_parked_output()];
        for _ in 0..6 {
            ops.push(
                IrOp::new(OpKind::Rotate)
                    .with_session(1)
                    .with_parked_input()
                    .with_input_id(1),
            );
        }
        let pinned = c
            .schedule_stream(&ops, RoutingPolicy::Affinity { steal: false })
            .unwrap();
        let home = pinned.assignment[0];
        let op_cycles = c.board.op_compute_cycles(&ops[1]).unwrap();
        let plan = FaultPlan::new().with_event(home, 2 * op_cycles, FaultKind::BoardCrash);
        let r = c
            .schedule_stream_faulted(&ops, RoutingPolicy::Affinity { steal: false }, &plan)
            .unwrap();
        assert_eq!(r.parked_rematerializations, 1);
        assert!(!r.board_alive[home]);
        // The session re-pins: every op after the crash runs on the
        // survivor.
        let survivor = 1 - home;
        assert_eq!(*r.assignment.last().unwrap(), survivor);
        assert_eq!(r.requests(), pinned.requests());
    }

    #[test]
    fn fault_plan_validation() {
        use crate::faults::{FaultKind, FaultPlan};
        let c = cluster(2, 1);
        let ops = session_rotations(2, 2);
        // Naming a board outside the cluster is rejected.
        let bad = FaultPlan::new().with_event(5, 0, FaultKind::BoardCrash);
        assert!(c
            .schedule_stream_faulted(&ops, RoutingPolicy::Affinity { steal: false }, &bad)
            .is_err());
        // Crashing every board wedges nothing — it errors out.
        let total = FaultPlan::new()
            .with_event(0, 0, FaultKind::BoardCrash)
            .with_event(1, 0, FaultKind::BoardCrash);
        assert!(c
            .schedule_stream_faulted(&ops, RoutingPolicy::Affinity { steal: false }, &total)
            .is_err());
        // Random routing also avoids drained boards.
        let half = FaultPlan::new().with_event(0, 0, FaultKind::BoardCrash);
        let r = c
            .schedule_stream_faulted(&ops, RoutingPolicy::Random { seed: 3 }, &half)
            .unwrap();
        assert!(r.assignment.iter().all(|&b| b == 1));
    }

    #[test]
    fn report_accounting_is_consistent() {
        let c = cluster(3, 2);
        let ops = session_rotations(6, 3);
        let r = c
            .schedule_stream(&ops, RoutingPolicy::Affinity { steal: false })
            .unwrap();
        assert_eq!(r.assignment.len(), ops.len());
        let per_op = r.per_op_compute_cycles();
        assert_eq!(per_op.len(), ops.len());
        let board_sum: u64 = r.boards.iter().map(|b| b.core_busy()).sum();
        assert_eq!(per_op.iter().sum::<u64>(), board_sum);
        assert!((0.0..=1.0).contains(&r.mean_utilization()));
        let s = r.render();
        assert!(s.contains("3 board(s)"));
        assert!(s.contains("affinity"));
        assert!(s.contains("board 2:"));
        // Empty stream renders and divides by nothing.
        let empty = c
            .schedule_stream(&[], RoutingPolicy::Random { seed: 1 })
            .unwrap();
        assert_eq!(empty.requests_per_sec(), 0.0);
        assert_eq!(empty.hit_rate(), 0.0);
        assert_eq!(empty.mean_utilization(), 0.0);
        // Ratio accessors are total: out-of-range boards answer 0.0.
        assert_eq!(empty.board_utilization(0), 0.0);
        assert_eq!(empty.board_utilization(99), 0.0);
        assert_eq!(r.board_utilization(99), 0.0);
        assert_eq!(empty.recovery_us(), 0.0);
    }
}
