//! Computation cores — Table 3 of the paper.
//!
//! Three core types exist in HEAX: the Dyadic core (modular
//! multiply-accumulate datapath of the MULT module, Figure 1), and the
//! NTT/INTT butterfly cores (Figure 3). Each core is modeled with:
//!
//! * its **resource cost** (Table 3),
//! * its **pipeline depth** in stages (Table 3, "#Stages"),
//! * a **functional datapath** operating on real 54-bit-domain residues, so
//!   the dataflow simulators compute genuine results.
//!
//! The paper's cores use `w = 54`-bit native words built from 27-bit DSP
//! slices: a modular multiplication needs one 54×54 product (4 DSPs) plus
//! the Barrett/MulRed correction multiplies. The Table 3 DSP counts (22 per
//! Dyadic core, 10 per NTT core) reflect that arithmetic.

use heax_math::word::{Modulus, MulRedConstant};

use crate::resources::Resources;
use crate::HwError;

/// Maximum modulus width supported by the 54-bit datapath (Section 4):
/// moduli must be < 2^52 for Algorithm 2 to be correct with w = 54.
pub const HW_MAX_MODULUS_BITS: u32 = 52;

/// The kinds of computation core.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CoreKind {
    /// Dyadic (coefficient-wise modular multiplier) core.
    Dyadic,
    /// Forward-NTT butterfly core.
    Ntt,
    /// Inverse-NTT butterfly core.
    Intt,
}

impl CoreKind {
    /// All kinds, Table 3 order.
    pub const ALL: [CoreKind; 3] = [CoreKind::Dyadic, CoreKind::Ntt, CoreKind::Intt];

    /// Resource cost of one core (Table 3).
    pub fn cost(self) -> Resources {
        match self {
            CoreKind::Dyadic => Resources::logic(22, 4526, 1663),
            CoreKind::Ntt => Resources::logic(10, 6297, 2066),
            CoreKind::Intt => Resources::logic(10, 5449, 2119),
        }
    }

    /// Pipeline depth in stages (Table 3, "#Stages").
    pub fn pipeline_stages(self) -> u64 {
        match self {
            CoreKind::Dyadic => 23,
            CoreKind::Ntt => 50,
            CoreKind::Intt => 49,
        }
    }

    /// Table 3 row label.
    pub fn name(self) -> &'static str {
        match self {
            CoreKind::Dyadic => "Dyadic",
            CoreKind::Ntt => "NTT",
            CoreKind::Intt => "INTT",
        }
    }
}

/// Validates that a modulus fits the hardware's 54-bit datapath.
///
/// # Errors
///
/// Returns [`HwError::ModulusTooWide`] for moduli of 53+ bits.
pub fn check_hw_modulus(modulus: &Modulus) -> Result<(), HwError> {
    if modulus.bits() > HW_MAX_MODULUS_BITS {
        return Err(HwError::ModulusTooWide {
            modulus: modulus.value(),
            bits: modulus.bits(),
            max_bits: HW_MAX_MODULUS_BITS,
        });
    }
    Ok(())
}

/// Functional model of the Dyadic core (Figure 1): one modular product per
/// clock, `Res = Op1 · Op2 mod p`, using the precomputed Barrett constants
/// (`R1`, `R2` in the figure).
#[derive(Clone, Copy, Debug, Default)]
pub struct DyadicCore {
    ops: u64,
}

impl DyadicCore {
    /// Fresh core with a zero op counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// One dyadic multiplication. Counts the operation.
    #[inline]
    pub fn compute(&mut self, op1: u64, op2: u64, modulus: &Modulus) -> u64 {
        self.ops = self.ops.saturating_add(1);
        modulus.mul_mod(op1, op2)
    }

    /// Fused multiply-accumulate, as used in the KeySwitch DyadMult stage.
    #[inline]
    pub fn compute_acc(&mut self, acc: u64, op1: u64, op2: u64, modulus: &Modulus) -> u64 {
        self.ops = self.ops.saturating_add(1);
        modulus.add_mod(acc, modulus.mul_mod(op1, op2))
    }

    /// Fused multiply-accumulate against a Shoup-precomputed constant
    /// operand in the lazy `[0, 2p)` domain — the MulRed unit of
    /// Algorithm 2 with the final correction deferred to a later pipeline
    /// stage, as the KeySwitch DyadMult columns do for the (fixed) key
    /// residues. `acc` must be `< 2p`; the result is `< 2p`.
    #[inline]
    pub fn compute_acc_shoup(
        &mut self,
        acc: u64,
        x: u64,
        key: &MulRedConstant,
        modulus: &Modulus,
    ) -> u64 {
        self.ops = self.ops.saturating_add(1);
        debug_assert!(acc < 2 * modulus.value());
        let two_p = 2 * modulus.value();
        let s = acc + key.mul_red_lazy(x, modulus); // DOMAIN: [0,2p)
        if s >= two_p {
            s - two_p
        } else {
            s
        }
    }

    /// Operations performed so far.
    pub fn ops(&self) -> u64 {
        self.ops
    }
}

/// Functional model of the NTT butterfly core (Figure 3): consumes a
/// coefficient pair, one twiddle factor (with its MulRed precompute), and
/// produces the transformed pair — the Cooley–Tukey butterfly of
/// Algorithm 3.
#[derive(Clone, Copy, Debug, Default)]
pub struct NttCore {
    butterflies: u64,
}

impl NttCore {
    /// Fresh core.
    pub fn new() -> Self {
        Self::default()
    }

    /// CT butterfly: `(a, b) ↦ (a + w·b, a − w·b)`.
    #[inline]
    pub fn butterfly(
        &mut self,
        a: u64,
        b: u64,
        w: &MulRedConstant,
        modulus: &Modulus,
    ) -> (u64, u64) {
        self.butterflies = self.butterflies.saturating_add(1);
        let v = w.mul_red(b, modulus);
        (modulus.add_mod(a, v), modulus.sub_mod(a, v))
    }

    /// Butterflies performed so far.
    pub fn butterflies(&self) -> u64 {
        self.butterflies
    }
}

/// Functional model of the INTT butterfly core: the Gentleman–Sande
/// butterfly of Algorithm 4 with the `/2` folded in:
/// `(a, b) ↦ ((a+b)/2, (a−b)·w)` where `w` already includes the `1/2`.
#[derive(Clone, Copy, Debug, Default)]
pub struct InttCore {
    butterflies: u64,
}

impl InttCore {
    /// Fresh core.
    pub fn new() -> Self {
        Self::default()
    }

    /// GS butterfly with folded halving.
    #[inline]
    pub fn butterfly(
        &mut self,
        a: u64,
        b: u64,
        w_half: &MulRedConstant,
        modulus: &Modulus,
    ) -> (u64, u64) {
        self.butterflies = self.butterflies.saturating_add(1);
        let v = modulus.sub_mod(a, b);
        (
            modulus.div2_mod(modulus.add_mod(a, b)),
            w_half.mul_red(v, modulus),
        )
    }

    /// Butterflies performed so far.
    pub fn butterflies(&self) -> u64 {
        self.butterflies
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heax_math::ntt::NttTable;
    use heax_math::primes::generate_ntt_primes;

    #[test]
    fn table3_costs() {
        let d = CoreKind::Dyadic.cost();
        assert_eq!((d.dsp, d.reg, d.alm), (22, 4526, 1663));
        let n = CoreKind::Ntt.cost();
        assert_eq!((n.dsp, n.reg, n.alm), (10, 6297, 2066));
        let i = CoreKind::Intt.cost();
        assert_eq!((i.dsp, i.reg, i.alm), (10, 5449, 2119));
        assert_eq!(CoreKind::Dyadic.pipeline_stages(), 23);
        assert_eq!(CoreKind::Ntt.pipeline_stages(), 50);
        assert_eq!(CoreKind::Intt.pipeline_stages(), 49);
        // Cores consume no BRAM themselves.
        assert_eq!(d.bram_bits, 0);
    }

    #[test]
    fn hw_modulus_bound() {
        let ok = Modulus::new(generate_ntt_primes(50, 1, 64).unwrap()[0]).unwrap();
        assert!(check_hw_modulus(&ok).is_ok());
        let wide = Modulus::new(generate_ntt_primes(60, 1, 64).unwrap()[0]).unwrap();
        assert!(matches!(
            check_hw_modulus(&wide),
            Err(HwError::ModulusTooWide { .. })
        ));
    }

    #[test]
    fn dyadic_core_computes_and_counts() {
        let p = Modulus::new(generate_ntt_primes(40, 1, 64).unwrap()[0]).unwrap();
        let mut core = DyadicCore::new();
        let r = core.compute(12345, 6789, &p);
        assert_eq!(r, p.mul_mod(12345, 6789));
        let acc = core.compute_acc(r, 2, 3, &p);
        assert_eq!(acc, p.add_mod(r, 6));
        assert_eq!(core.ops(), 2);
    }

    #[test]
    fn dyadic_core_shoup_acc_matches_barrett_mod_p() {
        let p = Modulus::new(generate_ntt_primes(40, 1, 64).unwrap()[0]).unwrap();
        let key = MulRedConstant::new(0x1234_5678 % p.value(), &p);
        let mut core = DyadicCore::new();
        // Chain several lazy accumulations; folding to [0, p) must match
        // the strict Barrett accumulate chain.
        let xs = [1u64, 999, p.value() - 1, 0x0fff_ffff];
        let mut lazy = 0u64;
        let mut strict = 0u64;
        for &x in &xs {
            lazy = core.compute_acc_shoup(lazy, x, &key, &p);
            assert!(lazy < 2 * p.value());
            strict = core.compute_acc(strict, x, key.operand(), &p);
        }
        let folded = if lazy >= p.value() {
            lazy - p.value()
        } else {
            lazy
        };
        assert_eq!(folded, strict);
        assert_eq!(core.ops(), 2 * xs.len() as u64);
    }

    #[test]
    fn ntt_intt_cores_invert_each_other() {
        let n = 16usize;
        let p = Modulus::new(generate_ntt_primes(40, 1, n).unwrap()[0]).unwrap();
        let table = NttTable::new(n, p).unwrap();
        // Use the stage-1 twiddle pair: fwd[1] and inv[1].
        let w_fwd = table.forward_twiddle(1);
        let w_inv = table.inverse_twiddle(1);
        let (a, b) = (1234u64, 5678u64);
        let mut ntt = NttCore::new();
        let mut intt = InttCore::new();
        let (x, y) = ntt.butterfly(a, b, w_fwd, &p);
        let (a2, b2) = intt.butterfly(x, y, w_inv, &p);
        assert_eq!((a2, b2), (a, b));
        assert_eq!(ntt.butterflies(), 1);
        assert_eq!(intt.butterflies(), 1);
    }
}
