//! Seeded, deterministic fault injection for the board and cluster
//! schedulers.
//!
//! The paper evaluates a perfect machine; production is N boards where
//! links flap, DMA engines degrade, boards slow down or disappear, and
//! resident key material goes bad. This module makes those failures a
//! *first-class, reproducible input*: a [`FaultPlan`] is an explicit
//! list of [`FaultEvent`]s — hand-built or drawn from a seeded
//! generator ([`FaultPlan::generate`]) — that
//! [`ClusterConfig::schedule_stream_faulted`](crate::cluster::ClusterConfig::schedule_stream_faulted)
//! and
//! [`PipelineConfig::schedule_stream_degraded`](crate::scheduler::PipelineConfig::schedule_stream_degraded)
//! consume. Because every fault is expressed in modeled cycles and
//! every reaction (failover, re-replication, eviction, dilation) is
//! deterministic, a faulted run is exactly reproducible and — crucially
//! — never perturbs functional results: faults reshape *where and how
//! slowly* work runs, not *what* it computes.
//!
//! The five modeled fault classes:
//!
//! * **Board crash** ([`FaultKind::BoardCrash`]): the board is drained
//!   from the routing table once its modeled load reaches the event
//!   cycle; resident sessions fail over to healthy boards (ksk
//!   re-replication billed through the normal byte accounting, parked
//!   state re-materialized from the host).
//! * **Board slow-down** ([`FaultKind::BoardSlowdown`]): every compute
//!   stage on the board dilates by a percentage; the router's load
//!   accounting sees the dilation, so slow boards naturally receive
//!   less work.
//! * **PCIe link flap/stall** ([`FaultKind::LinkStall`]): every DMA
//!   transfer on the board pays a flat re-training stall instead of
//!   wedging the schedule.
//! * **DMA-channel degradation** ([`FaultKind::DmaDegrade`]): the
//!   host→board and/or board→host channels dilate by a percentage.
//! * **Resident-ksk corruption** ([`FaultKind::KskCorruption`]):
//!   detected via checksum mismatch ([`ksk_checksum`]); the cluster
//!   evicts the resident copy and re-uploads it on the session's next
//!   key-consuming op.
//!
//! ```
//! use heax_hw::faults::{FaultKind, FaultPlan, FaultRates};
//!
//! // A hand-built plan: board 1 dies a quarter into the run.
//! let plan = FaultPlan::new().with_event(1, 250_000, FaultKind::BoardCrash);
//! assert!(!plan.is_empty());
//!
//! // A seeded plan is reproducible: same seed, same schedule.
//! let rates = FaultRates { crash: 0.25, ..FaultRates::default() };
//! let a = FaultPlan::generate(7, 4, 1_000_000, &[1, 2, 3], &rates);
//! let b = FaultPlan::generate(7, 4, 1_000_000, &[1, 2, 3], &rates);
//! assert_eq!(a.events, b.events);
//! ```

/// One class of injected hardware fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// The board stops serving: it is drained from the routing table
    /// once its modeled load reaches the event cycle, and every
    /// resident session fails over to a healthy board.
    BoardCrash,
    /// Every compute stage on the board dilates by `pct` percent for
    /// the rest of the run.
    BoardSlowdown {
        /// Compute dilation in percent (25 = 1.25× slower).
        pct: u32,
    },
    /// The board's PCIe link flaps: every DMA transfer (either
    /// direction) pays a flat re-training stall.
    LinkStall {
        /// Stall added to each transfer, in cycles.
        stall_cycles: u64,
    },
    /// One or both DMA channels degrade by a percentage for the rest
    /// of the run.
    DmaDegrade {
        /// Host→board dilation in percent.
        in_pct: u32,
        /// Board→host dilation in percent.
        out_pct: u32,
    },
    /// The board's resident copy of a session's key-switching key goes
    /// bad; the checksum mismatch is detected on the session's next
    /// key-consuming op, the copy is evicted and re-uploaded.
    KskCorruption {
        /// The session whose resident ksk is corrupted.
        session: u64,
    },
}

/// One scheduled fault: a kind, the board it strikes, and the modeled
/// cycle at which it takes effect.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultEvent {
    /// The board the fault strikes.
    pub board: usize,
    /// Modeled cycle at which the fault takes effect. Crash and
    /// corruption events trigger once the board's accumulated load
    /// reaches this cycle; degradation events (slow-down, link, DMA)
    /// apply to the board's whole run — the model is conservative
    /// about partial-run degradation.
    pub at_cycle: u64,
    /// What breaks.
    pub kind: FaultKind,
}

/// A deterministic fault schedule: the list of events a faulted
/// scheduling run replays. Empty plans are free — the fault-free
/// entry points pass [`FaultPlan::none`] through the same code path.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// The scheduled events, in no particular order.
    pub events: Vec<FaultEvent>,
}

/// Per-class fault probabilities for the seeded generator, each the
/// chance that a given board suffers that fault during the horizon.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct FaultRates {
    /// Probability a board crashes.
    pub crash: f64,
    /// Probability a board slows down (25–100 %).
    pub slowdown: f64,
    /// Probability a board's link flaps (a flat per-transfer stall).
    pub link: f64,
    /// Probability a board's DMA channels degrade.
    pub dma: f64,
    /// Probability a board's resident ksk for a random session goes bad.
    pub ksk_corruption: f64,
}

/// Splitmix-style seeded stream: the same LCG idiom the random routing
/// policy uses, so fault schedules are reproducible across platforms.
struct Lcg(u64);

impl Lcg {
    fn new(seed: u64) -> Self {
        Self(seed ^ 0x9E37_79B9_7F4A_7C15)
    }

    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        self.0 >> 11
    }

    /// Uniform in `[0, 1)`.
    fn unit(&mut self) -> f64 {
        (self.next() & ((1 << 53) - 1)) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in `[0, bound)`; 0 when the bound is 0.
    fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next() % bound
        }
    }
}

impl FaultPlan {
    /// An empty plan (the fault-free schedule).
    pub fn none() -> Self {
        Self::default()
    }

    /// An empty plan to build on with [`FaultPlan::with_event`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether the plan schedules no faults at all.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Builder: append one event.
    #[must_use]
    pub fn with_event(mut self, board: usize, at_cycle: u64, kind: FaultKind) -> Self {
        self.events.push(FaultEvent {
            board,
            at_cycle,
            kind,
        });
        self
    }

    /// Draws a deterministic fault schedule from a seed: for each of
    /// `num_boards` boards and each fault class, one Bernoulli draw at
    /// the configured rate; struck boards get an event at a uniform
    /// cycle inside `horizon_cycles`. Corruption events target a
    /// uniformly drawn session from `sessions` (none are generated if
    /// the slice is empty). The same `(seed, num_boards,
    /// horizon_cycles, sessions, rates)` always yields the same plan.
    pub fn generate(
        seed: u64,
        num_boards: usize,
        horizon_cycles: u64,
        sessions: &[u64],
        rates: &FaultRates,
    ) -> Self {
        let mut rng = Lcg::new(seed);
        let mut plan = Self::new();
        for board in 0..num_boards {
            if rng.unit() < rates.crash {
                plan = plan.with_event(board, rng.below(horizon_cycles), FaultKind::BoardCrash);
            }
            if rng.unit() < rates.slowdown {
                let pct = 25 + rng.below(76) as u32; // 25–100 %
                plan = plan.with_event(
                    board,
                    rng.below(horizon_cycles),
                    FaultKind::BoardSlowdown { pct },
                );
            }
            if rng.unit() < rates.link {
                // Link re-training is tens of microseconds, not
                // workload-scale: bound the per-transfer stall so a
                // flapping link degrades throughput instead of
                // swallowing the whole schedule.
                let stall_cycles = 1 + rng.below((horizon_cycles.max(2) / 64).min(10_000));
                plan = plan.with_event(
                    board,
                    rng.below(horizon_cycles),
                    FaultKind::LinkStall { stall_cycles },
                );
            }
            if rng.unit() < rates.dma {
                let in_pct = rng.below(51) as u32;
                let out_pct = rng.below(51) as u32;
                plan = plan.with_event(
                    board,
                    rng.below(horizon_cycles),
                    FaultKind::DmaDegrade { in_pct, out_pct },
                );
            }
            if rng.unit() < rates.ksk_corruption && !sessions.is_empty() {
                let session = sessions[rng.below(sessions.len() as u64) as usize];
                plan = plan.with_event(
                    board,
                    rng.below(horizon_cycles),
                    FaultKind::KskCorruption { session },
                );
            }
        }
        plan
    }

    /// Folds the plan's degradation events for one board into the
    /// whole-run profile the board scheduler dilates its timings by.
    /// Crash and corruption events are routing-level and do not appear
    /// here.
    pub fn board_profile(&self, board: usize) -> BoardFaultProfile {
        let mut p = BoardFaultProfile::default();
        for e in self.events.iter().filter(|e| e.board == board) {
            match e.kind {
                FaultKind::BoardSlowdown { pct } => {
                    p.compute_slowdown_pct = p.compute_slowdown_pct.saturating_add(pct);
                }
                FaultKind::LinkStall { stall_cycles } => {
                    p.link_stall_cycles = p.link_stall_cycles.saturating_add(stall_cycles);
                }
                FaultKind::DmaDegrade { in_pct, out_pct } => {
                    p.dma_in_slowdown_pct = p.dma_in_slowdown_pct.saturating_add(in_pct);
                    p.dma_out_slowdown_pct = p.dma_out_slowdown_pct.saturating_add(out_pct);
                }
                FaultKind::BoardCrash | FaultKind::KskCorruption { .. } => {}
            }
        }
        p
    }

    /// The cycle at which `board` crashes, if the plan crashes it.
    /// Multiple crash events collapse to the earliest.
    pub fn crash_cycle(&self, board: usize) -> Option<u64> {
        self.events
            .iter()
            .filter(|e| e.board == board && e.kind == FaultKind::BoardCrash)
            .map(|e| e.at_cycle)
            .min()
    }
}

/// The whole-run degradation profile of one board, folded from a
/// [`FaultPlan`] by [`FaultPlan::board_profile`]: percentage dilations
/// on compute and the two DMA channels plus a flat per-transfer link
/// stall. The default profile is a healthy board.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BoardFaultProfile {
    /// Percent dilation of every compute stage (25 = 1.25× slower).
    pub compute_slowdown_pct: u32,
    /// Percent dilation of host→board DMA transfers.
    pub dma_in_slowdown_pct: u32,
    /// Percent dilation of board→host DMA transfers.
    pub dma_out_slowdown_pct: u32,
    /// Flat stall added to every DMA transfer (link re-training).
    pub link_stall_cycles: u64,
}

impl BoardFaultProfile {
    /// Whether the profile degrades nothing (the fault-free fast path).
    pub fn is_healthy(&self) -> bool {
        *self == Self::default()
    }

    /// Dilates a cycle count by a percentage, saturating.
    pub fn dilate(cycles: u64, pct: u32) -> u64 {
        cycles.saturating_add(cycles.saturating_mul(pct as u64) / 100)
    }
}

/// FNV-1a checksum over a session's resident key-switching-key words —
/// the integrity tag a board keeps next to each resident ksk. A
/// corruption event models exactly one thing: this checksum no longer
/// matching, which the router detects on the next key-consuming op and
/// answers by evicting and re-uploading the key.
pub fn ksk_checksum(words: &[u64]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for w in words {
        for b in w.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_is_deterministic_and_rate_sensitive() {
        let rates = FaultRates {
            crash: 0.5,
            slowdown: 0.5,
            link: 0.5,
            dma: 0.5,
            ksk_corruption: 0.5,
        };
        let sessions = [1u64, 2, 3, 4];
        let a = FaultPlan::generate(42, 8, 1_000_000, &sessions, &rates);
        let b = FaultPlan::generate(42, 8, 1_000_000, &sessions, &rates);
        assert_eq!(a.events, b.events);
        let c = FaultPlan::generate(43, 8, 1_000_000, &sessions, &rates);
        assert_ne!(a.events, c.events, "different seeds, different plans");
        // Certain rates strike every board; zero rates strike none.
        let all = FaultPlan::generate(
            1,
            8,
            1_000_000,
            &sessions,
            &FaultRates {
                crash: 1.0,
                ..FaultRates::default()
            },
        );
        assert_eq!(all.events.len(), 8);
        assert!(all.events.iter().all(|e| e.kind == FaultKind::BoardCrash));
        let none = FaultPlan::generate(1, 8, 1_000_000, &sessions, &FaultRates::default());
        assert!(none.is_empty());
    }

    #[test]
    fn corruption_needs_sessions() {
        let rates = FaultRates {
            ksk_corruption: 1.0,
            ..FaultRates::default()
        };
        assert!(FaultPlan::generate(5, 4, 1000, &[], &rates).is_empty());
        let plan = FaultPlan::generate(5, 4, 1000, &[9], &rates);
        assert_eq!(plan.events.len(), 4);
        assert!(plan
            .events
            .iter()
            .all(|e| e.kind == FaultKind::KskCorruption { session: 9 }));
    }

    #[test]
    fn profiles_fold_per_board_and_crashes_resolve_earliest() {
        let plan = FaultPlan::new()
            .with_event(0, 100, FaultKind::BoardSlowdown { pct: 25 })
            .with_event(0, 200, FaultKind::LinkStall { stall_cycles: 50 })
            .with_event(
                0,
                300,
                FaultKind::DmaDegrade {
                    in_pct: 10,
                    out_pct: 20,
                },
            )
            .with_event(1, 500, FaultKind::BoardCrash)
            .with_event(1, 400, FaultKind::BoardCrash);
        let p0 = plan.board_profile(0);
        assert_eq!(p0.compute_slowdown_pct, 25);
        assert_eq!(p0.link_stall_cycles, 50);
        assert_eq!(p0.dma_in_slowdown_pct, 10);
        assert_eq!(p0.dma_out_slowdown_pct, 20);
        assert!(!p0.is_healthy());
        assert!(plan.board_profile(1).is_healthy()); // crash is routing-level
        assert_eq!(plan.crash_cycle(1), Some(400));
        assert_eq!(plan.crash_cycle(0), None);
    }

    #[test]
    fn dilation_saturates_and_is_exact() {
        assert_eq!(BoardFaultProfile::dilate(1000, 0), 1000);
        assert_eq!(BoardFaultProfile::dilate(1000, 25), 1250);
        assert_eq!(BoardFaultProfile::dilate(1000, 100), 2000);
        assert_eq!(BoardFaultProfile::dilate(u64::MAX, 100), u64::MAX);
    }

    #[test]
    fn checksum_detects_a_flipped_word() {
        let good = vec![7u64; 64];
        let mut bad = good.clone();
        bad[13] ^= 1;
        assert_ne!(ksk_checksum(&good), ksk_checksum(&bad));
        assert_eq!(ksk_checksum(&good), ksk_checksum(&good));
        assert_ne!(ksk_checksum(&[]), 0); // FNV offset basis, not zero
    }
}
