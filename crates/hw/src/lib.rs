//! # heax-hw
//!
//! Hardware component models and cycle-accurate dataflow simulators for
//! the HEAX FPGA architecture (ASPLOS 2020):
//!
//! * [`board`] — the two evaluation boards (Table 1);
//! * [`resources`] — DSP/REG/ALM/BRAM accounting;
//! * [`cores`] — Dyadic/NTT/INTT core cost and functional models (Table 3);
//! * [`bram`] — M20K block-RAM and word-packing model (Section 4.2);
//! * [`ntt_dataflow`] — the banked-memory NTT/INTT module simulator
//!   (Figures 2–4), bit-exact against the software NTT;
//! * [`mult_dataflow`] — the MULT module simulator (Figure 1);
//! * [`keyswitch_pipeline`] — the KeySwitch module pipeline scheduler
//!   (Figures 5–6), reproducing the Table 8 initiation intervals;
//! * [`xfer`] — PCIe and DRAM transfer models (Section 5);
//! * [`ir`] — the shared op-stream IR (ops, operand placement,
//!   session/key identity, dependency edges) that serving layers lower
//!   requests into and every scheduler consumes;
//! * [`scheduler`] — the board-level pipeline scheduler composing the
//!   module models into multi-core schedules with overlapped PCIe/DRAM
//!   transfers (Figure 7), reporting per-stage utilization and stalls;
//! * [`cluster`] — the multi-board cluster scheduler: a front-end
//!   router with session→board key affinity, work stealing and
//!   key-replication cost modeling over N single-board pipelines;
//! * [`faults`] — seeded, deterministic fault schedules (board crash,
//!   slow-down, link flap, DMA degradation, ksk corruption) that the
//!   board and cluster schedulers replay with graceful degradation.
//!
//! This crate is deliberately independent of the CKKS scheme: it moves raw
//! residue polynomials. `heax-core` composes these models into a full
//! accelerator and checks them against `heax-ckks`.
//!
//! ## Example: from one module's cycle count to a board schedule
//!
//! ```
//! use heax_hw::board::Board;
//! use heax_hw::keyswitch_pipeline::KeySwitchArch;
//! use heax_hw::mult_dataflow::MultModuleConfig;
//! use heax_hw::ntt_dataflow::NttModuleConfig;
//! use heax_hw::scheduler::{BoardOp, PipelineConfig};
//!
//! # fn main() -> Result<(), heax_hw::HwError> {
//! // A 16-core NTT module at n = 4096 sustains one transform per
//! // n·log n / (2·nc) = 1536 cycles (Table 7).
//! assert_eq!(NttModuleConfig::new(4096, 16)?.transform_cycles(), 1536);
//!
//! // The same formulas drive the board-level schedule: Set-A on
//! // Stratix 10, two HEAX cores, four rotations.
//! let arch = KeySwitchArch {
//!     n: 4096, k: 2, nc_intt0: 16, m0: 2, nc_ntt0: 16,
//!     num_dyad: 3, nc_dyad: 8, nc_intt1: 8, nc_ntt1: 16, nc_ms: 4,
//! };
//! let config = PipelineConfig::new(
//!     &Board::stratix10(), arch, MultModuleConfig::new(4096, 16)?, 2)?;
//! let report = config.schedule_stream(&[BoardOp::rotate_many(4)])?;
//! assert_eq!(report.requests(), 4);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod board;
pub mod bram;
pub mod cluster;
pub mod cores;
pub mod faults;
pub mod ir;
pub mod keyswitch_pipeline;
pub mod mult_dataflow;
pub mod ntt_dataflow;
pub mod resources;
pub mod scheduler;
pub mod wordsize;
pub mod xfer;

use core::fmt;

/// Errors produced by the hardware models.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum HwError {
    /// A module configuration is structurally invalid.
    InvalidConfig {
        /// Human-readable reason.
        reason: String,
    },
    /// A modulus exceeds the 54-bit datapath's 52-bit bound (Section 4).
    ModulusTooWide {
        /// The modulus value.
        modulus: u64,
        /// Its width in bits.
        bits: u32,
        /// The datapath bound.
        max_bits: u32,
    },
    /// A design does not fit the board's resource budget.
    ResourceOverflow {
        /// Which resource overflowed.
        resource: &'static str,
        /// Amount required.
        required: u64,
        /// Amount available.
        available: u64,
    },
}

impl fmt::Display for HwError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidConfig { reason } => write!(f, "invalid hardware config: {reason}"),
            Self::ModulusTooWide {
                modulus,
                bits,
                max_bits,
            } => write!(
                f,
                "modulus {modulus} is {bits} bits; the 54-bit datapath supports at most {max_bits}"
            ),
            Self::ResourceOverflow {
                resource,
                required,
                available,
            } => write!(
                f,
                "design needs {required} {resource} but the chip has {available}"
            ),
        }
    }
}

impl std::error::Error for HwError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        let e = HwError::ResourceOverflow {
            resource: "DSP",
            required: 2000,
            available: 1518,
        };
        assert!(e.to_string().contains("DSP"));
        fn assert_traits<T: std::error::Error + Send + Sync + 'static>() {}
        assert_traits::<HwError>();
    }
}
