//! Board-level pipeline scheduler: composes the per-module dataflow
//! models into the machine the paper actually evaluates (Section 5,
//! Figure 7).
//!
//! The per-module simulators answer "how many cycles does one NTT /
//! MULT / KeySwitch take"; this module answers "what does the *board*
//! sustain": an [`ir`](crate::ir) op stream (multiply, relinearize,
//! rotate — including hoisted multi-rotation groups, rescale) is
//! lowered onto a configurable number of fully-pipelined HEAX cores,
//! with host↔board PCIe transfers running on their own DMA channels so
//! data movement overlaps compute, double-buffered per-core input
//! FIFOs (Section 5.2), and key-switching keys optionally streamed
//! from board DRAM per operation (Section 5.1).
//!
//! The model is deliberately *not* another functional simulator: stage
//! durations come from the closed-form cycle counts that the
//! cycle-accurate simulators of [`ntt_dataflow`](crate::ntt_dataflow),
//! [`mult_dataflow`](crate::mult_dataflow) and
//! [`keyswitch_pipeline`](crate::keyswitch_pipeline) validate, and the
//! scheduler plays them forward as a discrete-event simulation over
//! three contended resources — the cores, the host→board DMA channel,
//! and the board→host DMA channel. The output is a [`PipelineReport`]:
//! per-op timings, per-stage utilization, input-FIFO high-water, and a
//! stall breakdown that says *why* the machine is not faster
//! (compute-bound vs PCIe-bound).
//!
//! ```
//! use heax_hw::scheduler::{BoardOp, PipelineConfig};
//! use heax_hw::board::Board;
//! use heax_hw::keyswitch_pipeline::KeySwitchArch;
//! use heax_hw::mult_dataflow::MultModuleConfig;
//!
//! # fn main() -> Result<(), heax_hw::HwError> {
//! // Stratix 10 / Set-B KeySwitch architecture (a Table 5 row).
//! let arch = KeySwitchArch {
//!     n: 8192, k: 4, nc_intt0: 16, m0: 4, nc_ntt0: 16,
//!     num_dyad: 5, nc_dyad: 8, nc_intt1: 4, nc_ntt1: 16, nc_ms: 4,
//! };
//! let mult = MultModuleConfig::new(8192, 16)?;
//! let config = PipelineConfig::new(&Board::stratix10(), arch, mult, 2)?;
//! // Two hoisted 4-rotation groups over two cores.
//! let ops = vec![BoardOp::rotate_many(4), BoardOp::rotate_many(4)];
//! let report = config.schedule_stream(&ops)?;
//! assert_eq!(report.requests(), 8);
//! assert!(report.requests_per_sec() > 0.0);
//! # Ok(())
//! # }
//! ```

use crate::board::Board;
use crate::faults::BoardFaultProfile;
use crate::keyswitch_pipeline::KeySwitchArch;
use crate::mult_dataflow::MultModuleConfig;
use crate::xfer::{DramModel, PcieModel};
use crate::HwError;

pub use crate::ir::{IrOp as BoardOp, OpKind as BoardOpKind};

/// Compute/transfer stage classes, for utilization attribution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StageClass {
    /// Host→board PCIe DMA.
    XferIn,
    /// MULT module pass (all residues).
    Mult,
    /// Full KeySwitch interval (decompose + accumulate + tail).
    KeySwitch,
    /// Hoisted-rotation tail (accumulate + modulus switch only).
    HoistedTail,
    /// Rescale / modulus-switch tail.
    Rescale,
    /// Dyadic element-wise pass (addition).
    Dyadic,
    /// Board→host PCIe DMA.
    XferOut,
}

impl StageClass {
    /// All classes, display order.
    pub const ALL: [StageClass; 7] = [
        StageClass::XferIn,
        StageClass::Mult,
        StageClass::KeySwitch,
        StageClass::HoistedTail,
        StageClass::Rescale,
        StageClass::Dyadic,
        StageClass::XferOut,
    ];

    /// Stable label.
    pub fn name(self) -> &'static str {
        match self {
            StageClass::XferIn => "xfer-in",
            StageClass::Mult => "mult",
            StageClass::KeySwitch => "keyswitch",
            StageClass::HoistedTail => "hoisted-tail",
            StageClass::Rescale => "rescale",
            StageClass::Dyadic => "dyadic",
            StageClass::XferOut => "xfer-out",
        }
    }
}

/// Static configuration of the board pipeline: how many HEAX cores the
/// design instantiates, the per-core module architecture, and the
/// board's transfer characteristics.
#[derive(Clone, Debug, PartialEq)]
pub struct PipelineConfig {
    /// Number of replicated HEAX cores (KeySwitch + MULT datapath each).
    pub num_cores: usize,
    /// The KeySwitch architecture of each core (a Table 5 row).
    pub arch: KeySwitchArch,
    /// The MULT module of each core.
    pub mult: MultModuleConfig,
    /// Board clock in MHz (converts transfer times into cycles).
    pub freq_mhz: f64,
    /// Host↔board PCIe link model (one DMA channel per direction).
    pub pcie: PcieModel,
    /// Board DRAM model (key streaming, Section 5.1).
    pub dram: DramModel,
    /// Whether key-switching keys are streamed from DRAM per operation
    /// (Set-C) instead of living in on-chip BRAM (Set-A/B). When the
    /// stream cannot keep up with the compute interval, the KeySwitch
    /// stages dilate to the DRAM-limited rate.
    pub ksk_in_dram: bool,
    /// Per-core input-FIFO depth in operation buffers (Section 5.2
    /// prescribes double buffering; the scheduler enforces the
    /// backpressure this depth implies).
    pub input_fifo_depth: usize,
}

impl PipelineConfig {
    /// Builds a validated configuration from a board and the per-core
    /// module architecture, with the paper's double-buffered inputs and
    /// on-chip keys.
    ///
    /// # Errors
    ///
    /// [`HwError::InvalidConfig`] if `num_cores` is zero, the
    /// architecture is invalid, or the MULT module's ring degree
    /// disagrees with the KeySwitch architecture's.
    pub fn new(
        board: &Board,
        arch: KeySwitchArch,
        mult: MultModuleConfig,
        num_cores: usize,
    ) -> Result<Self, HwError> {
        if num_cores == 0 {
            return Err(HwError::InvalidConfig {
                reason: "board pipeline needs at least one core".into(),
            });
        }
        arch.validate()?;
        if mult.n != arch.n {
            return Err(HwError::InvalidConfig {
                reason: format!(
                    "MULT ring degree {} disagrees with KeySwitch ring degree {}",
                    mult.n, arch.n
                ),
            });
        }
        Ok(Self {
            num_cores,
            arch,
            mult,
            freq_mhz: board.freq_mhz(),
            pcie: PcieModel::for_board(board),
            dram: DramModel::for_board(board),
            ksk_in_dram: false,
            input_fifo_depth: 2,
        })
    }

    /// Builder option: stream key-switching keys from DRAM (Set-C).
    #[must_use]
    pub fn with_ksk_in_dram(mut self, in_dram: bool) -> Self {
        self.ksk_in_dram = in_dram;
        self
    }

    /// Builder option: per-core input-FIFO depth (≥ 1).
    #[must_use]
    pub fn with_input_fifo_depth(mut self, depth: usize) -> Self {
        self.input_fifo_depth = depth.max(1);
        self
    }

    fn us_to_cycles(&self, us: f64) -> u64 {
        (us * self.freq_mhz).ceil() as u64
    }

    /// PCIe transfer duration in cycles for `words` 64-bit words, split
    /// into polynomial-sized DMA requests.
    fn xfer_cycles(&self, words: u64) -> u64 {
        if words == 0 {
            return 0;
        }
        let requests = (words / self.arch.n as u64).max(1);
        self.us_to_cycles(self.pcie.transfer_us(words, requests))
    }

    /// Cycles to stream one key-switching key from DRAM (0 when keys
    /// are on-chip).
    fn ksk_stream_cycles(&self) -> u64 {
        if !self.ksk_in_dram {
            return 0;
        }
        let bytes = DramModel::ksk_bits(self.arch.n, self.arch.k) as f64 / 8.0;
        self.us_to_cycles(bytes / (self.dram.bandwidth_gbps * 1e3))
    }

    /// Occupancy of the rescale / modulus-switch tail: INTT1, then `k`
    /// NTT1 and MS jobs per output polynomial, bounded by the slowest
    /// of the three module layers (they pipeline against each other).
    fn rescale_cycles(&self) -> u64 {
        let k = self.arch.k as u64;
        self.arch
            .intt1_cycles()
            .max(k * self.arch.ntt1_cycles())
            .max(k * self.arch.ms_cycles())
    }

    /// Cycles to move one key-switching key host→board over PCIe (the
    /// replication cost a cluster router charges on a residency miss,
    /// and the recovery latency of a failover re-replication).
    pub fn ksk_upload_cycles(&self) -> u64 {
        let words = DramModel::ksk_bits(self.arch.n, self.arch.k) / 64;
        self.xfer_cycles(words)
    }

    /// Compute cycles one op occupies a core for (no transfers) — the
    /// load estimate the cluster router balances boards by.
    ///
    /// # Errors
    ///
    /// [`HwError::InvalidConfig`] for malformed ops (empty hoisted
    /// groups).
    pub fn op_compute_cycles(&self, op: &BoardOp) -> Result<u64, HwError> {
        Ok(self.lower(op)?.compute.iter().map(|&(_, c)| c).sum())
    }

    /// Lowers one high-level op into transfer volumes and compute
    /// stages. All volumes are modeled at the top of the modulus chain
    /// (`k` residue limbs per polynomial) — the level the paper
    /// evaluates throughput at.
    fn lower(&self, op: &BoardOp) -> Result<LoweredOp, HwError> {
        let n = self.arch.n as u64;
        let k = self.arch.k as u64;
        let ct = 2 * k * n; // 2-component ciphertext, k limbs each
        let ks = self
            .arch
            .steady_interval_cycles()
            .max(self.ksk_stream_cycles());
        let tail = self
            .arch
            .hoisted_interval_cycles()
            .max(self.ksk_stream_cycles());
        let (label, in_words, out_words, compute) = match op.kind {
            BoardOpKind::Multiply => (
                "multiply",
                2 * ct,
                ct,
                vec![
                    (StageClass::Mult, k * self.mult.ciphertext_mult_cycles(2, 2)),
                    (StageClass::KeySwitch, ks),
                ],
            ),
            BoardOpKind::Relinearize => (
                "relinearize",
                3 * k * n,
                ct,
                vec![(StageClass::KeySwitch, ks)],
            ),
            BoardOpKind::Rotate => ("rotate", ct, ct, vec![(StageClass::KeySwitch, ks)]),
            BoardOpKind::RotateMany {
                count,
                parked_outputs,
            } => {
                if count == 0 {
                    return Err(HwError::InvalidConfig {
                        reason: "hoisted rotation group must contain at least one rotation".into(),
                    });
                }
                if parked_outputs > count {
                    return Err(HwError::InvalidConfig {
                        reason: format!(
                            "hoisted group parks {parked_outputs} outputs but only has {count}"
                        ),
                    });
                }
                (
                    "rotate-many",
                    ct,
                    (count - parked_outputs) as u64 * ct,
                    vec![
                        (StageClass::KeySwitch, ks),
                        (StageClass::HoistedTail, (count as u64 - 1) * tail),
                    ],
                )
            }
            BoardOpKind::Rescale => (
                "rescale",
                ct,
                2 * k.saturating_sub(1).max(1) * n,
                vec![(StageClass::Rescale, self.rescale_cycles())],
            ),
            BoardOpKind::Add => (
                "add",
                2 * ct,
                ct,
                vec![(StageClass::Dyadic, 2 * k * self.mult.pair_cycles())],
            ),
            // Pure movement: an inline operand pays the upload (the
            // upload-and-park serving pattern), a parked one doesn't;
            // park_output below cancels the return leg.
            BoardOpKind::Fetch => ("fetch", ct, ct, Vec::new()),
        };
        // Wire-v2 byte economics. A seeded fresh operand ships one
        // polynomial plus a 32-byte seed instead of two polynomials, so
        // the host→board ciphertext volume halves (the seed itself is 4
        // words — noise at these sizes). A compressed reply returns only
        // `reply_limbs` of the `k` residue limbs after the server's
        // modulus switch (limb-dropping is free of compute: it never
        // touches the remaining residues), scaling the board→host volume
        // proportionally.
        let in_words = if op.input_seeded {
            in_words / 2
        } else {
            in_words
        };
        let out_words = match op.reply_limbs as u64 {
            limbs if limbs > 0 && limbs < k => out_words * limbs / k,
            _ => out_words,
        };
        // A ksk upload (cluster residency miss) rides the host→board
        // channel ahead of the op's data, even when the ciphertext
        // operands themselves are already parked on the board.
        let ksk_cycles = if op.ksk_upload {
            self.ksk_upload_cycles()
        } else {
            0
        };
        Ok(LoweredOp {
            label,
            requests: op.requests(),
            in_cycles: ksk_cycles
                + if op.input_parked {
                    0
                } else {
                    self.xfer_cycles(in_words)
                },
            out_cycles: if op.park_output {
                0
            } else {
                self.xfer_cycles(out_words)
            },
            compute,
        })
    }

    /// Schedules an op stream across the board: greedy in stream order,
    /// each op placed on the earliest-available core, host→board and
    /// board→host DMA serialized on their own channels, per-core input
    /// FIFOs `input_fifo_depth` deep (an op's input transfer cannot
    /// start until a buffer slot frees). Dependency edges
    /// ([`BoardOp::deps`]) delay an op's compute until every
    /// producer's compute has finished.
    ///
    /// # Errors
    ///
    /// [`HwError::InvalidConfig`] for malformed ops (empty hoisted
    /// groups, or a dependency edge that does not point strictly
    /// backwards in the stream).
    pub fn schedule_stream(&self, ops: &[BoardOp]) -> Result<PipelineReport, HwError> {
        self.schedule_stream_degraded(ops, &BoardFaultProfile::default())
    }

    /// [`PipelineConfig::schedule_stream`] under an injected
    /// degradation profile: every compute stage dilates by the
    /// profile's compute slow-down, each DMA transfer dilates by its
    /// channel's slow-down and pays the flat link-stall on top.
    /// Degradation reshapes *timing only* — op order, placement rules
    /// and data volumes are untouched, so a degraded schedule answers
    /// exactly the same requests as a healthy one, later. A healthy
    /// (default) profile is bit-identical to
    /// [`PipelineConfig::schedule_stream`]
    /// (which delegates here).
    ///
    /// # Errors
    ///
    /// [`HwError::InvalidConfig`] for malformed ops, as
    /// [`PipelineConfig::schedule_stream`].
    pub fn schedule_stream_degraded(
        &self,
        ops: &[BoardOp],
        profile: &BoardFaultProfile,
    ) -> Result<PipelineReport, HwError> {
        for (index, op) in ops.iter().enumerate() {
            for dep in op.dep_indices() {
                if dep >= index {
                    return Err(HwError::InvalidConfig {
                        reason: format!("op {index} depends on non-earlier op {dep}"),
                    });
                }
            }
        }
        let mut lowered: Vec<LoweredOp> = ops
            .iter()
            .map(|op| self.lower(op))
            .collect::<Result<_, _>>()?;
        if !profile.is_healthy() {
            for op in &mut lowered {
                if op.in_cycles > 0 {
                    op.in_cycles =
                        BoardFaultProfile::dilate(op.in_cycles, profile.dma_in_slowdown_pct)
                            .saturating_add(profile.link_stall_cycles);
                }
                if op.out_cycles > 0 {
                    op.out_cycles =
                        BoardFaultProfile::dilate(op.out_cycles, profile.dma_out_slowdown_pct)
                            .saturating_add(profile.link_stall_cycles);
                }
                for (_, cycles) in &mut op.compute {
                    *cycles = BoardFaultProfile::dilate(*cycles, profile.compute_slowdown_pct);
                }
            }
        }

        let mut xfer_in_free = 0u64;
        let mut xfer_out_free = 0u64;
        let mut core_free = vec![0u64; self.num_cores];
        // Per-core compute-end history, for FIFO backpressure: the
        // transfer for a core's j-th op may start only once its buffer
        // slot is free, i.e. when the (j-depth)-th op on that core has
        // finished consuming its own slot.
        let mut core_history: Vec<Vec<u64>> = vec![Vec::new(); self.num_cores];
        let mut timings: Vec<OpTiming> = Vec::with_capacity(lowered.len());
        let mut stage_busy: Vec<(StageClass, u64)> =
            StageClass::ALL.iter().map(|&s| (s, 0)).collect();
        let add_busy = |class: StageClass, cycles: u64, busy: &mut Vec<(StageClass, u64)>| {
            if let Some((_, b)) = busy.iter_mut().find(|(s, _)| *s == class) {
                *b += cycles;
            }
        };

        for (index, op) in lowered.iter().enumerate() {
            // Earliest-available core (ties: lowest index).
            let core = core_free
                .iter()
                .enumerate()
                .min_by_key(|&(i, &t)| (t, i))
                .map(|(i, _)| i)
                .expect("num_cores >= 1");
            let slot = core_history[core]
                .len()
                .checked_sub(self.input_fifo_depth)
                .map(|j| core_history[core][j])
                .unwrap_or(0);

            // Parked inputs need no DMA slot and cannot be delayed by
            // the host→board channel.
            let (in_start, in_end, fifo_stall) = if op.in_cycles > 0 {
                let fifo_stall = slot.saturating_sub(xfer_in_free);
                let s = xfer_in_free.max(slot);
                let e = s + op.in_cycles;
                xfer_in_free = e;
                add_busy(StageClass::XferIn, op.in_cycles, &mut stage_busy);
                (s, e, fifo_stall)
            } else {
                (0, 0, 0)
            };

            let compute_cycles: u64 = op.compute.iter().map(|&(_, c)| c).sum();
            // A dependency edge means this op reads an earlier op's
            // board-resident result: compute cannot start before every
            // producer's compute has finished.
            let deps_ready = ops[index]
                .dep_indices()
                .map(|d| timings[d].compute.1)
                .max()
                .unwrap_or(0);
            let ready = core_free[core].max(deps_ready);
            let compute_start = ready.max(in_end);
            let input_stall = in_end.saturating_sub(ready);
            let compute_end = compute_start + compute_cycles;
            core_free[core] = compute_end;
            core_history[core].push(compute_end);
            for &(class, cycles) in &op.compute {
                add_busy(class, cycles, &mut stage_busy);
            }

            let out_start = if op.out_cycles > 0 {
                xfer_out_free.max(compute_end)
            } else {
                compute_end
            };
            let output_stall = out_start - compute_end;
            let out_end = out_start + op.out_cycles;
            if op.out_cycles > 0 {
                xfer_out_free = out_end;
                add_busy(StageClass::XferOut, op.out_cycles, &mut stage_busy);
            }

            timings.push(OpTiming {
                index,
                label: op.label,
                core,
                requests: op.requests,
                xfer_in: (in_start, in_end),
                compute: (compute_start, compute_end),
                xfer_out: (out_start, out_end),
                input_stall,
                output_stall,
                fifo_stall,
            });
        }

        // Input-FIFO high-water per core: buffers are live from the
        // start of the input transfer until compute releases them.
        // Event sweep (O(n log n)) — cluster-scale streams run to tens
        // of thousands of ops, where the naive pairwise overlap count
        // would dominate the schedule itself. Releases sort before
        // acquisitions at equal time (half-open [start, end) spans).
        let mut fifo_high_water = 0u64;
        for core in 0..self.num_cores {
            let mut events: Vec<(u64, i64)> = Vec::new();
            for t in timings.iter().filter(|t| t.core == core) {
                if t.xfer_in.1 > t.xfer_in.0 && t.compute.1 > t.xfer_in.0 {
                    events.push((t.xfer_in.0, 1));
                    events.push((t.compute.1, -1));
                }
            }
            events.sort_unstable_by_key(|&(time, delta)| (time, delta));
            let mut live = 0i64;
            for (_, delta) in events {
                live += delta;
                fifo_high_water = fifo_high_water.max(live.max(0) as u64);
            }
        }

        let total_cycles = timings
            .iter()
            .map(|t| t.compute.1.max(t.xfer_out.1))
            .max()
            .unwrap_or(0);
        Ok(PipelineReport {
            num_cores: self.num_cores,
            freq_mhz: self.freq_mhz,
            total_cycles,
            ops: timings,
            stage_busy,
            fifo_high_water,
        })
    }
}

/// One lowered op: transfer durations plus compute stages.
#[derive(Clone, Debug)]
struct LoweredOp {
    label: &'static str,
    requests: u64,
    in_cycles: u64,
    out_cycles: u64,
    compute: Vec<(StageClass, u64)>,
}

/// Timing of one scheduled op.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OpTiming {
    /// Position in the op stream.
    pub index: usize,
    /// Op label (`"rotate-many"`, …).
    pub label: &'static str,
    /// Core the compute ran on.
    pub core: usize,
    /// Client requests answered by this op.
    pub requests: u64,
    /// Host→board transfer `[start, end)` in cycles (empty if parked).
    pub xfer_in: (u64, u64),
    /// Compute occupancy `[start, end)` on the core.
    pub compute: (u64, u64),
    /// Board→host transfer `[start, end)` (empty if parked).
    pub xfer_out: (u64, u64),
    /// Cycles the core sat idle waiting for this op's input data.
    pub input_stall: u64,
    /// Cycles the finished result waited for the board→host channel.
    pub output_stall: u64,
    /// Cycles the input DMA waited for a free FIFO buffer slot.
    pub fifo_stall: u64,
}

/// Aggregate stall breakdown of a schedule.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StallBreakdown {
    /// Core idle cycles waiting on input transfers.
    pub input_wait: u64,
    /// Result cycles waiting on the board→host channel.
    pub output_wait: u64,
    /// Input-DMA cycles waiting on FIFO backpressure.
    pub fifo_backpressure: u64,
}

/// The scheduler's answer: per-op timings plus aggregate occupancy,
/// utilization, FIFO, and stall figures.
#[derive(Clone, Debug)]
pub struct PipelineReport {
    /// Cores the stream was scheduled across.
    pub num_cores: usize,
    /// Board clock in MHz.
    pub freq_mhz: f64,
    /// Makespan: cycle at which the last result lands.
    pub total_cycles: u64,
    /// Per-op timings, stream order.
    pub ops: Vec<OpTiming>,
    /// Busy cycles per stage class (summed across cores/channels).
    pub stage_busy: Vec<(StageClass, u64)>,
    /// Deepest any core's input FIFO ever got (operation buffers).
    pub fifo_high_water: u64,
}

impl PipelineReport {
    /// Total client requests answered.
    pub fn requests(&self) -> u64 {
        self.ops.iter().map(|t| t.requests).sum()
    }

    /// Makespan in microseconds at the board clock.
    pub fn total_us(&self) -> f64 {
        self.total_cycles as f64 / self.freq_mhz
    }

    /// Sustained high-level operations per second.
    pub fn ops_per_sec(&self) -> f64 {
        if self.total_cycles == 0 {
            return 0.0;
        }
        self.ops.len() as f64 / (self.total_us() / 1e6)
    }

    /// Sustained client requests per second (hoisted groups answer one
    /// request per rotation).
    pub fn requests_per_sec(&self) -> f64 {
        if self.total_cycles == 0 {
            return 0.0;
        }
        self.requests() as f64 / (self.total_us() / 1e6)
    }

    /// Busy cycles of one stage class.
    pub fn busy(&self, class: StageClass) -> u64 {
        self.stage_busy
            .iter()
            .find(|(s, _)| *s == class)
            .map(|&(_, b)| b)
            .unwrap_or(0)
    }

    /// Aggregate core compute busy cycles (all compute classes).
    pub fn core_busy(&self) -> u64 {
        self.stage_busy
            .iter()
            .filter(|(s, _)| !matches!(s, StageClass::XferIn | StageClass::XferOut))
            .map(|&(_, b)| b)
            .sum()
    }

    /// Fraction of core-cycles spent computing (1.0 = every core busy
    /// for the whole makespan).
    pub fn core_utilization(&self) -> f64 {
        if self.total_cycles == 0 {
            return 0.0;
        }
        self.core_busy() as f64 / (self.num_cores as u64 * self.total_cycles) as f64
    }

    /// Utilization of one stage class against the makespan (transfer
    /// classes have one channel; compute classes are normalized by the
    /// core count).
    pub fn stage_utilization(&self, class: StageClass) -> f64 {
        if self.total_cycles == 0 {
            return 0.0;
        }
        let units = match class {
            StageClass::XferIn | StageClass::XferOut => 1,
            _ => self.num_cores as u64,
        };
        self.busy(class) as f64 / (units * self.total_cycles) as f64
    }

    /// Aggregate stall breakdown.
    pub fn stalls(&self) -> StallBreakdown {
        let mut s = StallBreakdown::default();
        for t in &self.ops {
            s.input_wait += t.input_stall;
            s.output_wait += t.output_stall;
            s.fifo_backpressure += t.fifo_stall;
        }
        s
    }

    /// What binds the makespan: `"compute"`, `"pcie-in"`, or
    /// `"pcie-out"` — whichever resource is busiest relative to its
    /// capacity.
    pub fn bound(&self) -> &'static str {
        let compute = self.core_utilization();
        let xin = self.stage_utilization(StageClass::XferIn);
        let xout = self.stage_utilization(StageClass::XferOut);
        if compute >= xin && compute >= xout {
            "compute"
        } else if xout >= xin {
            "pcie-out"
        } else {
            "pcie-in"
        }
    }

    /// Renders the report as a human-readable summary block (the
    /// artifact `accelerator_sim` and `bench_pipeline` print).
    pub fn render(&self) -> String {
        let mut out = format!(
            "board pipeline: {} core(s) @ {:.0} MHz — {} op(s) / {} request(s)\n\
             makespan {} cycles ({:.1} us) -> {:.0} requests/s  [{}-bound]\n\
             core utilization {:.1}%  input-FIFO high-water {}\n",
            self.num_cores,
            self.freq_mhz,
            self.ops.len(),
            self.requests(),
            self.total_cycles,
            self.total_us(),
            self.requests_per_sec(),
            self.bound(),
            100.0 * self.core_utilization(),
            self.fifo_high_water,
        );
        let stalls = self.stalls();
        out.push_str(&format!(
            "stalls: input-wait {}  output-wait {}  fifo-backpressure {}\n",
            stalls.input_wait, stalls.output_wait, stalls.fifo_backpressure
        ));
        out.push_str("stage        busy-cycles  utilization\n");
        for &(class, busy) in &self.stage_busy {
            if busy == 0 {
                continue;
            }
            out.push_str(&format!(
                "{:<12} {:>11}  {:>10.1}%\n",
                class.name(),
                busy,
                100.0 * self.stage_utilization(class)
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::xfer::WORD_BYTES;

    /// Table 5 row: Stratix 10, Set-B (n = 2^13, k = 4).
    fn set_b() -> KeySwitchArch {
        KeySwitchArch {
            n: 8192,
            k: 4,
            nc_intt0: 16,
            m0: 4,
            nc_ntt0: 16,
            num_dyad: 5,
            nc_dyad: 8,
            nc_intt1: 4,
            nc_ntt1: 16,
            nc_ms: 4,
        }
    }

    /// Table 5 row: Stratix 10, Set-C (n = 2^14, k = 8) — the
    /// DRAM-streamed-keys configuration.
    fn set_c() -> KeySwitchArch {
        KeySwitchArch {
            n: 16384,
            k: 8,
            nc_intt0: 8,
            m0: 4,
            nc_ntt0: 16,
            num_dyad: 5,
            nc_dyad: 8,
            nc_intt1: 1,
            nc_ntt1: 8,
            nc_ms: 4,
        }
    }

    fn config(arch: KeySwitchArch, cores: usize) -> PipelineConfig {
        let mult = MultModuleConfig::new(arch.n, 16).unwrap();
        PipelineConfig::new(&Board::stratix10(), arch, mult, cores).unwrap()
    }

    /// The 8-client × 8-rotation server workload as a board op stream:
    /// one hoisted group per client.
    fn eight_client_workload() -> Vec<BoardOp> {
        vec![BoardOp::rotate_many(8); 8]
    }

    #[test]
    fn config_validation() {
        let arch = set_b();
        let mult = MultModuleConfig::new(8192, 16).unwrap();
        assert!(PipelineConfig::new(&Board::stratix10(), arch, mult, 0).is_err());
        let wrong_n = MultModuleConfig::new(4096, 16).unwrap();
        assert!(PipelineConfig::new(&Board::stratix10(), arch, wrong_n, 1).is_err());
        assert!(config(arch, 1)
            .schedule_stream(&[BoardOp::rotate_many(0)])
            .is_err());
    }

    #[test]
    fn single_op_timeline() {
        let cfg = config(set_b(), 1);
        let r = cfg
            .schedule_stream(&[BoardOp::new(BoardOpKind::Rotate)])
            .unwrap();
        assert_eq!(r.ops.len(), 1);
        let t = &r.ops[0];
        // Transfer in, then compute, then transfer out, no overlap
        // possible for a lone op.
        assert!(t.xfer_in.1 > t.xfer_in.0);
        assert_eq!(t.compute.0, t.xfer_in.1);
        assert_eq!(t.compute.1 - t.compute.0, cfg.arch.steady_interval_cycles());
        assert_eq!(t.xfer_out.0, t.compute.1);
        assert_eq!(r.total_cycles, t.xfer_out.1);
        assert_eq!(r.requests(), 1);
        assert_eq!(r.fifo_high_water, 1);
    }

    #[test]
    fn v2_flags_shrink_the_transfer_legs() {
        let cfg = config(set_b(), 1);
        let rot = BoardOp::new(BoardOpKind::Rotate);
        let full = cfg.schedule_stream(&[rot]).unwrap();
        let full_in = full.ops[0].xfer_in.1 - full.ops[0].xfer_in.0;
        let full_out = full.ops[0].xfer_out.1 - full.ops[0].xfer_out.0;

        // Seeded input: roughly half the host→board leg.
        let seeded = cfg.schedule_stream(&[rot.with_seeded_input()]).unwrap();
        let seeded_in = seeded.ops[0].xfer_in.1 - seeded.ops[0].xfer_in.0;
        assert!(seeded_in < full_in);
        assert!(seeded_in <= full_in / 2 + full_in / 8, "expected ~half");

        // Compressed reply: the board→host leg scales by limbs/k.
        let compressed = cfg.schedule_stream(&[rot.with_reply_limbs(1)]).unwrap();
        let comp_out = compressed.ops[0].xfer_out.1 - compressed.ops[0].xfer_out.0;
        assert!(comp_out < full_out / 2);

        // Full-width replies (0 or >= k) change nothing.
        for limbs in [0u8, cfg.arch.k as u8, u8::MAX] {
            let r = cfg.schedule_stream(&[rot.with_reply_limbs(limbs)]).unwrap();
            assert_eq!(
                r.ops[0].xfer_out.1 - r.ops[0].xfer_out.0,
                full_out,
                "limbs {limbs}"
            );
        }
    }

    #[test]
    fn double_buffering_overlaps_transfer_with_compute() {
        let cfg = config(set_b(), 1);
        let ops = vec![BoardOp::new(BoardOpKind::Rotate); 4];
        let r = cfg.schedule_stream(&ops).unwrap();
        // Op 1's input transfer starts while op 0 is still computing.
        assert!(r.ops[1].xfer_in.0 < r.ops[0].compute.1);
        // Steady state: back-to-back rotations on one core are spaced
        // by the KeySwitch interval (transfers hidden).
        let interval = cfg.arch.steady_interval_cycles();
        assert_eq!(r.ops[3].compute.0 - r.ops[2].compute.0, interval);
        // FIFO never exceeds the configured double buffering.
        assert!(r.fifo_high_water <= cfg.input_fifo_depth as u64);
    }

    #[test]
    fn fifo_depth_one_serializes_transfers() {
        let cfg = config(set_b(), 1).with_input_fifo_depth(1);
        let ops = vec![BoardOp::new(BoardOpKind::Rotate); 3];
        let r = cfg.schedule_stream(&ops).unwrap();
        // With a single buffer, op 1's transfer must wait for op 0's
        // compute to release it.
        assert!(r.ops[1].xfer_in.0 >= r.ops[0].compute.1);
        assert!(r.stalls().fifo_backpressure > 0);
        // Double buffering strictly beats it.
        let r2 = config(set_b(), 1).schedule_stream(&ops).unwrap();
        assert!(r2.total_cycles < r.total_cycles);
    }

    #[test]
    fn multi_core_overlaps_compute() {
        let ops = eight_client_workload();
        let one = config(set_c(), 1).schedule_stream(&ops).unwrap();
        let two = config(set_c(), 2).schedule_stream(&ops).unwrap();
        assert!(two.total_cycles < one.total_cycles);
        // Ops actually land on both cores.
        assert!(two.ops.iter().any(|t| t.core == 1));
        // No core runs two ops at once.
        for core in 0..2 {
            let mut evs: Vec<_> = two.ops.iter().filter(|t| t.core == core).collect();
            evs.sort_by_key(|t| t.compute.0);
            for w in evs.windows(2) {
                assert!(w[1].compute.0 >= w[0].compute.1);
            }
        }
    }

    #[test]
    fn four_cores_at_least_double_one_core_on_the_server_workload() {
        // The acceptance bar: 4-core modeled throughput >= 2x 1-core on
        // the 8-client x 8-rotation workload (Set-C, the paper's
        // DRAM-streamed flagship set).
        let ops = eight_client_workload();
        let one = config(set_c(), 1)
            .with_ksk_in_dram(true)
            .schedule_stream(&ops)
            .unwrap();
        let four = config(set_c(), 4)
            .with_ksk_in_dram(true)
            .schedule_stream(&ops)
            .unwrap();
        let speedup = four.requests_per_sec() / one.requests_per_sec();
        assert!(speedup >= 2.0, "4-core speedup only {speedup:.2}x");
        assert_eq!(one.requests(), 64);
        assert_eq!(four.requests(), 64);
    }

    #[test]
    fn parked_io_removes_transfers() {
        let cfg = config(set_b(), 2);
        let wire = vec![BoardOp::rotate_many(8); 4];
        let parked: Vec<BoardOp> = wire
            .iter()
            .map(|op| op.with_parked_input().with_parked_output())
            .collect();
        let rw = cfg.schedule_stream(&wire).unwrap();
        let rp = cfg.schedule_stream(&parked).unwrap();
        assert_eq!(rp.busy(StageClass::XferIn), 0);
        assert_eq!(rp.busy(StageClass::XferOut), 0);
        assert!(rp.total_cycles <= rw.total_cycles);
        assert_eq!(rp.bound(), "compute");
        assert!(rp.core_utilization() > 0.9);
    }

    #[test]
    fn ksk_streaming_dilates_keyswitch_when_dram_is_too_slow() {
        let mut slow = config(set_c(), 1).with_ksk_in_dram(true);
        slow.dram.bandwidth_gbps = 8.0; // Far below the §5.1 requirement.
        let fast = config(set_c(), 1).with_ksk_in_dram(true);
        let ops = [BoardOp::rotate_many(4)];
        let rs = slow.schedule_stream(&ops).unwrap();
        let rf = fast.schedule_stream(&ops).unwrap();
        assert!(
            rs.busy(StageClass::KeySwitch) > rf.busy(StageClass::KeySwitch),
            "slow DRAM must dilate the KeySwitch interval"
        );
        // Stratix 10's four channels sustain the Set-C stream: no
        // dilation against the on-chip model's compute interval.
        assert_eq!(
            rf.busy(StageClass::KeySwitch),
            fast.arch.steady_interval_cycles()
        );
    }

    #[test]
    fn mixed_park_groups_and_fetch_uploads_charge_partial_transfers() {
        let cfg = config(set_b(), 1);
        // A group parking half its outputs pays strictly between zero
        // and the all-wire return cost.
        let all_wire = cfg.schedule_stream(&[BoardOp::rotate_many(8)]).unwrap();
        let half = BoardOp::new(BoardOpKind::RotateMany {
            count: 8,
            parked_outputs: 4,
        });
        let half_r = cfg.schedule_stream(&[half]).unwrap();
        assert!(half_r.busy(StageClass::XferOut) > 0);
        assert!(half_r.busy(StageClass::XferOut) < all_wire.busy(StageClass::XferOut));
        // Parking more outputs than the group has is rejected.
        assert!(cfg
            .schedule_stream(&[BoardOp::new(BoardOpKind::RotateMany {
                count: 2,
                parked_outputs: 3,
            })])
            .is_err());
        // Upload-and-park (inline Fetch, parked result) pays the
        // host→board leg and nothing else.
        let upload = BoardOp::new(BoardOpKind::Fetch).with_parked_output();
        let r = cfg.schedule_stream(&[upload]).unwrap();
        assert!(r.busy(StageClass::XferIn) > 0);
        assert_eq!(r.busy(StageClass::XferOut), 0);
        assert_eq!(r.core_busy(), 0);
    }

    #[test]
    fn stage_accounting_is_consistent() {
        let cfg = config(set_b(), 2);
        let ops = vec![
            BoardOp::new(BoardOpKind::Multiply),
            BoardOp::new(BoardOpKind::Add),
            BoardOp::rotate_many(4),
            BoardOp::new(BoardOpKind::Rescale),
            BoardOp::new(BoardOpKind::Relinearize),
            BoardOp::new(BoardOpKind::Fetch).with_parked_input(),
        ];
        let r = cfg.schedule_stream(&ops).unwrap();
        // Core busy equals the sum of compute spans.
        let span_sum: u64 = r.ops.iter().map(|t| t.compute.1 - t.compute.0).sum();
        assert_eq!(r.core_busy(), span_sum);
        // Makespan bounds every per-resource busy figure.
        assert!(r.busy(StageClass::XferIn) <= r.total_cycles);
        assert!(r.busy(StageClass::XferOut) <= r.total_cycles);
        assert!(r.core_busy() <= r.num_cores as u64 * r.total_cycles);
        // Fetch computes nothing but ships a result.
        let fetch = &r.ops[5];
        assert_eq!(fetch.compute.0, fetch.compute.1);
        assert!(fetch.xfer_out.1 > fetch.xfer_out.0);
        // Requests: 1 each except the hoisted group.
        assert_eq!(r.requests(), 9);
        assert!((0.0..=1.0).contains(&r.core_utilization()));
    }

    #[test]
    fn dependency_edges_serialize_across_cores() {
        // Producer parks its result; the consumer on the other core
        // must wait for it even though its own core is free.
        let cfg = config(set_b(), 2);
        let ops = vec![
            BoardOp::new(BoardOpKind::Rotate).with_parked_output(),
            BoardOp::new(BoardOpKind::Add)
                .with_parked_input()
                .with_dep(0),
        ];
        let r = cfg.schedule_stream(&ops).unwrap();
        assert!(r.ops[1].compute.0 >= r.ops[0].compute.1);
        // Without the edge the add starts immediately.
        let free = cfg
            .schedule_stream(&[
                BoardOp::new(BoardOpKind::Rotate).with_parked_output(),
                BoardOp::new(BoardOpKind::Add).with_parked_input(),
            ])
            .unwrap();
        assert_eq!(free.ops[1].compute.0, 0);
        // Forward or self edges are structurally invalid.
        assert!(cfg
            .schedule_stream(&[BoardOp::new(BoardOpKind::Rotate).with_dep(0)])
            .is_err());
    }

    #[test]
    fn ksk_upload_charges_the_input_channel() {
        let cfg = config(set_b(), 1);
        let plain = cfg
            .schedule_stream(&[BoardOp::new(BoardOpKind::Rotate)])
            .unwrap();
        let uploaded = cfg
            .schedule_stream(&[BoardOp::new(BoardOpKind::Rotate).with_ksk_upload()])
            .unwrap();
        // Set-B: the ksk (2·k·(k+1)·n words) is 2.5x a ciphertext
        // (2·k·n) — the upload must dominate the input leg.
        assert!(uploaded.busy(StageClass::XferIn) > 2 * plain.busy(StageClass::XferIn));
        // Parked operands still pay the key upload (keys travel even
        // when ciphertexts don't).
        let parked = cfg
            .schedule_stream(&[BoardOp::new(BoardOpKind::Rotate)
                .with_parked_input()
                .with_ksk_upload()])
            .unwrap();
        assert!(parked.busy(StageClass::XferIn) > 0);
        assert!(parked.busy(StageClass::XferIn) < uploaded.busy(StageClass::XferIn));
    }

    #[test]
    fn degradation_dilates_timing_without_changing_coverage() {
        let cfg = config(set_b(), 2);
        let ops = eight_client_workload();
        let healthy = cfg.schedule_stream(&ops).unwrap();
        let profile = BoardFaultProfile {
            compute_slowdown_pct: 50,
            dma_in_slowdown_pct: 25,
            dma_out_slowdown_pct: 25,
            link_stall_cycles: 1000,
        };
        let degraded = cfg.schedule_stream_degraded(&ops, &profile).unwrap();
        // Slower, but the same work lands: the link stalls and
        // dilations never drop or reorder an op.
        assert!(degraded.total_cycles > healthy.total_cycles);
        assert_eq!(degraded.requests(), healthy.requests());
        assert_eq!(degraded.ops.len(), healthy.ops.len());
        for (d, h) in degraded.ops.iter().zip(&healthy.ops) {
            assert_eq!(d.label, h.label);
            assert!(d.compute.1 - d.compute.0 >= h.compute.1 - h.compute.0);
        }
        // A healthy profile is bit-identical to the plain entry point.
        let same = cfg
            .schedule_stream_degraded(&ops, &BoardFaultProfile::default())
            .unwrap();
        assert_eq!(same.total_cycles, healthy.total_cycles);
        assert_eq!(same.ops, healthy.ops);
    }

    #[test]
    fn report_renders() {
        let r = config(set_b(), 2)
            .schedule_stream(&eight_client_workload())
            .unwrap();
        let s = r.render();
        assert!(s.contains("2 core(s)"));
        assert!(s.contains("keyswitch"));
        assert!(s.contains("hoisted-tail"));
        assert!(s.contains("requests/s"));
        // Empty stream renders without dividing by zero.
        let empty = config(set_b(), 1).schedule_stream(&[]).unwrap();
        assert_eq!(empty.requests_per_sec(), 0.0);
        assert_eq!(empty.ops_per_sec(), 0.0);
        assert!(empty.render().contains("0 op(s)"));
    }

    #[test]
    fn word_volume_uses_word_bytes() {
        // Guard the unit bridge: one ciphertext at Set-B is 2·k·n words
        // = 512 KiB; its transfer must take longer than 30 us on the
        // 15.75 GB/s link.
        let cfg = config(set_b(), 1);
        let words = 2 * 4 * 8192u64;
        assert_eq!(words * WORD_BYTES, 512 * 1024);
        let cycles = cfg.xfer_cycles(words);
        assert!(cycles > cfg.us_to_cycles(30.0));
    }
}
