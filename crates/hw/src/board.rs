//! FPGA board models — Table 1 of the paper.

use crate::resources::Resources;

/// The two proof-of-concept boards of the paper (Section 6.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BoardKind {
    /// Board-A: Intel Arria 10 GX 1150, 2 DRAM channels, PCIe Gen3 x8.
    ArriaA10,
    /// Board-B: Intel Stratix 10 GX 2800, 4 DRAM channels, PCIe Gen3 x16.
    StratixS10,
}

/// A board: chip resource budget plus memory/IO characteristics and the
/// clock frequency the paper's place-and-route achieved.
#[derive(Clone, Debug, PartialEq)]
pub struct Board {
    kind: BoardKind,
    name: &'static str,
    chip: &'static str,
    budget: Resources,
    dram_channels: u32,
    /// Aggregate DRAM bandwidth (GB/s) across channels (Table 1 "BW").
    dram_bandwidth_gbps: f64,
    /// PCIe bandwidth per direction (GB/s).
    pcie_bandwidth_gbps: f64,
    /// Achieved clock frequency (MHz) — Table 6.
    freq_mhz: f64,
    /// DRAM capacity in GiB.
    dram_gib: u32,
}

/// Bits per M20K unit (512 × 40-bit words).
pub const M20K_BITS: u64 = 512 * 40;

impl Board {
    /// Board-A: Arria 10 GX 1150 (Table 1 row 1).
    pub fn arria10() -> Self {
        Board {
            kind: BoardKind::ArriaA10,
            name: "Board-A",
            chip: "Arria 10 GX 1150",
            budget: Resources {
                dsp: 1518,
                reg: 1_710_000,
                alm: 427_000,
                bram_bits: 2713 * M20K_BITS, // ≈ 53 Mib
                m20k: 2713,
            },
            dram_channels: 2,
            dram_bandwidth_gbps: 34.0,
            pcie_bandwidth_gbps: 7.88,
            freq_mhz: 275.0,
            dram_gib: 4,
        }
    }

    /// Board-B: Stratix 10 GX 2800 (Table 1 row 2).
    pub fn stratix10() -> Self {
        Board {
            kind: BoardKind::StratixS10,
            name: "Board-B",
            chip: "Stratix 10 GX 2800",
            budget: Resources {
                dsp: 5760,
                reg: 3_730_000,
                alm: 933_000,
                bram_bits: 11721 * M20K_BITS, // ≈ 229 Mib
                m20k: 11721,
            },
            dram_channels: 4,
            dram_bandwidth_gbps: 64.0,
            pcie_bandwidth_gbps: 15.75,
            freq_mhz: 300.0,
            dram_gib: 64,
        }
    }

    /// Board for a kind.
    pub fn new(kind: BoardKind) -> Self {
        match kind {
            BoardKind::ArriaA10 => Self::arria10(),
            BoardKind::StratixS10 => Self::stratix10(),
        }
    }

    /// Which board this is.
    pub fn kind(&self) -> BoardKind {
        self.kind
    }

    /// Paper's board label ("Board-A" / "Board-B").
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Chip name.
    pub fn chip(&self) -> &'static str {
        self.chip
    }

    /// Chip resource budget.
    pub fn budget(&self) -> &Resources {
        &self.budget
    }

    /// Number of independent DRAM channels.
    pub fn dram_channels(&self) -> u32 {
        self.dram_channels
    }

    /// Aggregate DRAM bandwidth in GB/s.
    pub fn dram_bandwidth_gbps(&self) -> f64 {
        self.dram_bandwidth_gbps
    }

    /// PCIe bandwidth per direction in GB/s.
    pub fn pcie_bandwidth_gbps(&self) -> f64 {
        self.pcie_bandwidth_gbps
    }

    /// Achieved clock frequency in MHz.
    pub fn freq_mhz(&self) -> f64 {
        self.freq_mhz
    }

    /// Clock frequency in Hz.
    pub fn freq_hz(&self) -> f64 {
        self.freq_mhz * 1e6
    }

    /// DRAM capacity in GiB.
    pub fn dram_gib(&self) -> u32 {
        self.dram_gib
    }

    /// Converts a cycle count at this board's clock into operations/second.
    pub fn cycles_to_ops_per_sec(&self, cycles: u64) -> f64 {
        if cycles == 0 {
            return f64::INFINITY;
        }
        self.freq_hz() / cycles as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_budgets() {
        let a = Board::arria10();
        assert_eq!(a.budget().dsp, 1518);
        assert_eq!(a.budget().m20k, 2713);
        // ≈ 53 Mib as printed in Table 1.
        assert_eq!(
            (a.budget().bram_bits as f64 / (1u64 << 20) as f64).round(),
            53.0
        );
        assert_eq!(a.dram_channels(), 2);
        assert_eq!(a.freq_mhz(), 275.0);

        let b = Board::stratix10();
        assert_eq!(b.budget().dsp, 5760);
        assert_eq!(b.budget().m20k, 11721);
        assert_eq!(b.budget().bram_bits / (1 << 20), 228); // ≈ 229 Mib
        assert_eq!(b.dram_channels(), 4);
        assert_eq!(b.dram_bandwidth_gbps(), 64.0);
        assert_eq!(b.freq_mhz(), 300.0);
    }

    #[test]
    fn stratix_strictly_bigger() {
        let a = Board::arria10();
        let b = Board::stratix10();
        assert!(a.budget().fits_within(b.budget()));
        assert!(!b.budget().fits_within(a.budget()));
    }

    #[test]
    fn ops_per_sec_conversion() {
        let b = Board::stratix10();
        // 3072 cycles at 300 MHz = 97656.25 ops/s (Table 8, Set-A KeySwitch).
        let ops = b.cycles_to_ops_per_sec(3072);
        assert!((ops - 97656.25).abs() < 0.01);
        assert!(b.cycles_to_ops_per_sec(0).is_infinite());
    }

    #[test]
    fn kind_roundtrip() {
        assert_eq!(Board::new(BoardKind::ArriaA10).kind(), BoardKind::ArriaA10);
        assert_eq!(Board::new(BoardKind::StratixS10).name(), "Board-B");
    }
}
