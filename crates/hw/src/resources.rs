//! FPGA resource accounting: DSPs, registers, ALMs, and block RAM.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Mul};

/// A bundle of FPGA resources (additive).
///
/// The three resource classes follow Section 6.1 of the paper: DSP units
/// (27-bit multipliers), ALMs with four 1-bit registers each, and M20K
/// block-RAM units of 512×40 bits.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Resources {
    /// Digital Signal Processing units.
    pub dsp: u64,
    /// 1-bit registers.
    pub reg: u64,
    /// Adaptive Logic Modules.
    pub alm: u64,
    /// Block-RAM bits in use.
    pub bram_bits: u64,
    /// M20K units in use.
    pub m20k: u64,
}

impl Resources {
    /// The zero bundle.
    pub const ZERO: Resources = Resources {
        dsp: 0,
        reg: 0,
        alm: 0,
        bram_bits: 0,
        m20k: 0,
    };

    /// Pure-logic bundle (no BRAM).
    pub fn logic(dsp: u64, reg: u64, alm: u64) -> Self {
        Self {
            dsp,
            reg,
            alm,
            ..Self::ZERO
        }
    }

    /// Pure-memory bundle.
    pub fn memory(bram_bits: u64, m20k: u64) -> Self {
        Self {
            bram_bits,
            m20k,
            ..Self::ZERO
        }
    }

    /// Whether every component fits within `budget`.
    pub fn fits_within(&self, budget: &Resources) -> bool {
        self.dsp <= budget.dsp
            && self.reg <= budget.reg
            && self.alm <= budget.alm
            && self.bram_bits <= budget.bram_bits
            && self.m20k <= budget.m20k
    }

    /// Component-wise utilization percentages against a budget.
    pub fn utilization_pct(&self, budget: &Resources) -> ResourceUtilization {
        let pct = |used: u64, avail: u64| {
            if avail == 0 {
                0.0
            } else {
                100.0 * used as f64 / avail as f64
            }
        };
        ResourceUtilization {
            dsp: pct(self.dsp, budget.dsp),
            reg: pct(self.reg, budget.reg),
            alm: pct(self.alm, budget.alm),
            bram_bits: pct(self.bram_bits, budget.bram_bits),
            m20k: pct(self.m20k, budget.m20k),
        }
    }
}

impl Add for Resources {
    type Output = Resources;
    fn add(self, o: Resources) -> Resources {
        Resources {
            dsp: self.dsp + o.dsp,
            reg: self.reg + o.reg,
            alm: self.alm + o.alm,
            bram_bits: self.bram_bits + o.bram_bits,
            m20k: self.m20k + o.m20k,
        }
    }
}

impl AddAssign for Resources {
    fn add_assign(&mut self, o: Resources) {
        *self = *self + o;
    }
}

impl Mul<u64> for Resources {
    type Output = Resources;
    fn mul(self, s: u64) -> Resources {
        Resources {
            dsp: self.dsp * s,
            reg: self.reg * s,
            alm: self.alm * s,
            bram_bits: self.bram_bits * s,
            m20k: self.m20k * s,
        }
    }
}

impl Sum for Resources {
    fn sum<I: Iterator<Item = Resources>>(iter: I) -> Resources {
        iter.fold(Resources::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Resources {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "DSP {} | REG {} | ALM {} | BRAM {} bits ({} M20K)",
            self.dsp, self.reg, self.alm, self.bram_bits, self.m20k
        )
    }
}

/// Utilization percentages per resource class (Table 6 format).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ResourceUtilization {
    /// DSP percentage.
    pub dsp: f64,
    /// Register percentage.
    pub reg: f64,
    /// ALM percentage.
    pub alm: f64,
    /// BRAM-bit percentage.
    pub bram_bits: f64,
    /// M20K percentage.
    pub m20k: f64,
}

impl fmt::Display for ResourceUtilization {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "DSP {:.0}% | REG {:.0}% | ALM {:.0}% | BRAM bits {:.0}% | M20K {:.0}%",
            self.dsp, self.reg, self.alm, self.bram_bits, self.m20k
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = Resources::logic(10, 100, 50);
        let b = Resources::memory(2048, 1);
        let s = a + b;
        assert_eq!(s.dsp, 10);
        assert_eq!(s.bram_bits, 2048);
        let doubled = s * 2;
        assert_eq!(doubled.reg, 200);
        assert_eq!(doubled.m20k, 2);
        let total: Resources = [a, b, doubled].into_iter().sum();
        assert_eq!(total.dsp, 30);
    }

    #[test]
    fn fits_and_utilization() {
        let used = Resources::logic(50, 0, 0);
        let budget = Resources::logic(100, 10, 10);
        assert!(used.fits_within(&budget));
        assert!(!budget.fits_within(&used));
        let u = used.utilization_pct(&budget);
        assert!((u.dsp - 50.0).abs() < 1e-9);
        assert_eq!(u.bram_bits, 0.0);
    }

    #[test]
    fn display_nonempty() {
        assert!(!Resources::ZERO.to_string().is_empty());
        assert!(!ResourceUtilization::default().to_string().is_empty());
    }
}
