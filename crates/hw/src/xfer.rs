//! Off-chip data movement models: PCIe host↔FPGA transfers (Section 5.2)
//! and DRAM streaming of key-switching keys (Section 5.1).

use crate::board::Board;

/// Bytes per transferred polynomial coefficient word.
pub const WORD_BYTES: u64 = 8;

/// PCIe transfer model: bandwidth plus a fixed per-request setup cost,
/// amortized by transferring at least one full polynomial per request and
/// interleaving eight parallel transfers (the paper's multi-threaded DMA
/// scheme).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PcieModel {
    /// Link bandwidth in GB/s (per direction).
    pub bandwidth_gbps: f64,
    /// Per-request fixed overhead in microseconds (DMA setup + doorbell).
    pub request_overhead_us: f64,
    /// Number of interleaved transfer threads.
    pub threads: u32,
}

impl PcieModel {
    /// Model for a board's PCIe link with the paper's 8-thread interleave.
    pub fn for_board(board: &Board) -> Self {
        Self {
            bandwidth_gbps: board.pcie_bandwidth_gbps(),
            request_overhead_us: 5.0,
            threads: 8,
        }
    }

    /// Time in microseconds to move `words` 64-bit words split into
    /// `requests` DMA requests; overhead of the interleaved requests is
    /// hidden behind the transfer of the others.
    pub fn transfer_us(&self, words: u64, requests: u64) -> f64 {
        let bytes = (words * WORD_BYTES) as f64;
        let wire = bytes / (self.bandwidth_gbps * 1e3); // GB/s → bytes/µs
        let exposed_overhead =
            self.request_overhead_us * (requests as f64 / self.threads as f64).ceil();
        wire + exposed_overhead
    }

    /// Effective throughput in GB/s for a given transfer.
    pub fn effective_gbps(&self, words: u64, requests: u64) -> f64 {
        let bytes = (words * WORD_BYTES) as f64;
        bytes / (self.transfer_us(words, requests) * 1e3)
    }
}

/// DRAM streaming model for key-switching keys.
///
/// §5.1: for `n = 2^14`, the keys do not fit in BRAM and are striped over
/// all four DRAM channels, read in burst mode once per KeySwitch.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DramModel {
    /// Number of channels used.
    pub channels: u32,
    /// Aggregate bandwidth in GB/s.
    pub bandwidth_gbps: f64,
}

impl DramModel {
    /// Model for a board's DRAM subsystem.
    pub fn for_board(board: &Board) -> Self {
        Self {
            channels: board.dram_channels(),
            bandwidth_gbps: board.dram_bandwidth_gbps(),
        }
    }

    /// Size of one level-`k` key-switching key in bits, as the paper
    /// counts it: two sets of `k·(k+1)` vectors of `n` 64-bit words.
    pub fn ksk_bits(n: usize, k: usize) -> u64 {
        2 * (k as u64) * (k as u64 + 1) * n as u64 * 64
    }

    /// Required streaming bandwidth in GB/s to feed one KeySwitch every
    /// `interval_us` microseconds.
    pub fn required_ksk_gbps(n: usize, k: usize, interval_us: f64) -> f64 {
        let bytes = Self::ksk_bits(n, k) as f64 / 8.0;
        bytes / (interval_us * 1e3)
    }

    /// Whether this DRAM subsystem sustains ksk streaming at the given
    /// KeySwitch interval.
    pub fn sustains_ksk(&self, n: usize, k: usize, interval_us: f64) -> bool {
        Self::required_ksk_gbps(n, k, interval_us) <= self.bandwidth_gbps
    }
}

/// Buffering depth required on the FPGA side for each module input
/// (Section 5.2): MULT inputs are double-buffered; KeySwitch inputs are
/// quadruple-buffered because of Data Dependency 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InputBuffering {
    /// Double buffering (MULT module).
    Double,
    /// Quadruple buffering (KeySwitch module).
    Quadruple,
}

impl InputBuffering {
    /// Number of polynomial-sized buffers.
    pub fn depth(self) -> u64 {
        match self {
            InputBuffering::Double => 2,
            InputBuffering::Quadruple => 4,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ksk_size_matches_papers_151_megabits() {
        // §5.1: n = 2^14, k = 8 → ≈ 151 Mb.
        let bits = DramModel::ksk_bits(16384, 8);
        assert_eq!(bits, 150_994_944);
        assert!((bits as f64 / 1e6 - 151.0).abs() < 0.1);
    }

    #[test]
    fn bandwidth_requirement_matches_papers_49_gbps() {
        // §5.1: streaming 151 Mb in 383 µs needs ≥ 49.28 GB/s.
        let req = DramModel::required_ksk_gbps(16384, 8, 383.0);
        assert!((req - 49.28).abs() < 0.05, "got {req}");
        // Stratix 10's four channels (64 GB/s) sustain it; Arria 10's two
        // channels (34 GB/s) do not.
        let s10 = DramModel::for_board(&Board::stratix10());
        assert!(s10.sustains_ksk(16384, 8, 383.0));
        let a10 = DramModel::for_board(&Board::arria10());
        assert!(!a10.sustains_ksk(16384, 8, 383.0));
    }

    #[test]
    fn pcie_polynomial_sized_requests() {
        // §5.2: transfers are ≥ one polynomial (2^15–2^17 bytes).
        let pcie = PcieModel::for_board(&Board::stratix10());
        let poly_words = 8192u64; // n = 2^13, one residue
        let t = pcie.transfer_us(poly_words, 1);
        assert!(t > 0.0);
        // Eight interleaved requests expose only one overhead slot.
        let t8 = pcie.transfer_us(8 * poly_words, 8);
        assert!(t8 < 8.0 * t, "interleaving must amortize overhead");
        let eff = pcie.effective_gbps(64 * poly_words, 64);
        assert!(
            eff > 0.5 * pcie.bandwidth_gbps,
            "large batches approach wire speed"
        );
    }

    #[test]
    fn buffering_depths() {
        assert_eq!(InputBuffering::Double.depth(), 2);
        assert_eq!(InputBuffering::Quadruple.depth(), 4);
    }
}
