//! Cycle-accurate simulation of the MULT module (Section 4.1, Figure 1).
//!
//! The module holds one RNS residue of every component of both input
//! ciphertexts in parallel BRAM banks (`α` banks for `ct1`, `β` for
//! `ct2`), reads one memory element from each per cycle, and feeds
//! `ncDYD` dyadic cores. Computing all pairwise component products of an
//! `α`-component by `β`-component ciphertext yields `α+β−1` output
//! components; processing per residue keeps both the BRAM footprint and
//! the host↔FPGA transfer at `O((α+β)·n)` words instead of
//! `O((α·β)·n)`.

use heax_math::word::Modulus;

use crate::bram::{BankLayout, MemoryBank};
use crate::cores::{check_hw_modulus, CoreKind, DyadicCore};
use crate::resources::Resources;
use crate::HwError;

/// Static configuration of a MULT module.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MultModuleConfig {
    /// Ring degree `n`.
    pub n: usize,
    /// Number of dyadic cores (`ncDYD`).
    pub num_cores: usize,
}

impl MultModuleConfig {
    /// Validated configuration.
    ///
    /// # Errors
    ///
    /// [`HwError::InvalidConfig`] unless both values are powers of two with
    /// `num_cores ≤ n`.
    pub fn new(n: usize, num_cores: usize) -> Result<Self, HwError> {
        if !n.is_power_of_two() || !num_cores.is_power_of_two() || num_cores == 0 || num_cores > n {
            return Err(HwError::InvalidConfig {
                reason: format!("invalid MULT config n={n}, num_cores={num_cores}"),
            });
        }
        Ok(Self { n, num_cores })
    }

    /// Cycles to multiply one polynomial pair dyadically (`n / ncDYD`) —
    /// the Table 7 "Dyadic" operation.
    pub fn pair_cycles(&self) -> u64 {
        (self.n / self.num_cores) as u64
    }

    /// Cycles for a full `α×β` homomorphic multiplication on one residue:
    /// all pairwise products, accumulation fused into the cores.
    pub fn ciphertext_mult_cycles(&self, alpha: usize, beta: usize) -> u64 {
        (alpha * beta) as u64 * self.pair_cycles()
    }

    /// Host→FPGA transfer volume in words for an `α×β` multiplication on
    /// one residue — the `O((α+β)·n)` bound of Section 4.1.
    pub fn input_transfer_words(&self, alpha: usize, beta: usize) -> u64 {
        ((alpha + beta) * self.n) as u64
    }

    /// FPGA→host transfer volume in words (`(α+β−1)·n`).
    pub fn output_transfer_words(&self, alpha: usize, beta: usize) -> u64 {
        ((alpha + beta - 1) * self.n) as u64
    }

    /// Module resources: cores plus input/output polynomial banks for a
    /// 2×2 multiplication (the provisioned configuration).
    pub fn module_resources(&self) -> Resources {
        let cores = CoreKind::Dyadic.cost() * self.num_cores as u64;
        // 2 + 2 input banks + 3 output banks, each one residue wide, with
        // MEs of ncDYD words.
        let bank = BankLayout::polynomial(self.n as u64, self.num_cores as u64);
        cores + bank.resources() * 7
    }
}

/// Run statistics for one simulated multiplication.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MultRunStats {
    /// Steady-state cycles.
    pub cycles: u64,
    /// Total latency including the dyadic-core pipeline depth.
    pub latency: u64,
    /// Dyadic operations executed.
    pub dyadic_ops: u64,
    /// ME reads across all input banks.
    pub me_reads: u64,
    /// ME writes to the output banks.
    pub me_writes: u64,
}

/// Functional MULT module simulator for a single RNS residue.
#[derive(Clone, Debug)]
pub struct MultModuleSim {
    config: MultModuleConfig,
    modulus: Modulus,
}

impl MultModuleSim {
    /// Binds a configuration to a modulus.
    ///
    /// # Errors
    ///
    /// [`HwError::ModulusTooWide`] if the modulus exceeds the 52-bit
    /// datapath bound.
    pub fn new(config: MultModuleConfig, modulus: Modulus) -> Result<Self, HwError> {
        check_hw_modulus(&modulus)?;
        Ok(Self { config, modulus })
    }

    /// The configuration.
    pub fn config(&self) -> &MultModuleConfig {
        &self.config
    }

    /// Multiplies ciphertext residues: `ct1` has `α` component residues,
    /// `ct2` has `β`; returns the `α+β−1` output component residues
    /// (`out[t] = Σ_{i+j=t} ct1[i] ⊙ ct2[j]`) and run statistics.
    ///
    /// For `α = β = 2` this is exactly Algorithm 5 on one residue; with
    /// `β`-sized 1 it is the ciphertext-plaintext (C-P) mode.
    ///
    /// # Panics
    ///
    /// Panics if any residue length differs from `n`, or either input is
    /// empty.
    pub fn multiply(&self, ct1: &[Vec<u64>], ct2: &[Vec<u64>]) -> (Vec<Vec<u64>>, MultRunStats) {
        let n = self.config.n;
        assert!(!ct1.is_empty() && !ct2.is_empty(), "empty ciphertext");
        for r in ct1.iter().chain(ct2) {
            assert_eq!(r.len(), n, "residue length mismatch");
        }
        let alpha = ct1.len();
        let beta = ct2.len();
        let nc = self.config.num_cores;
        let layout = BankLayout::polynomial(n as u64, nc as u64);

        // Load input banks (one per component, α + β total).
        let mut banks1: Vec<MemoryBank> = ct1
            .iter()
            .map(|r| {
                let mut b = MemoryBank::new(layout);
                b.load(r);
                b
            })
            .collect();
        let mut banks2: Vec<MemoryBank> = ct2
            .iter()
            .map(|r| {
                let mut b = MemoryBank::new(layout);
                b.load(r);
                b
            })
            .collect();
        let mut out_banks: Vec<MemoryBank> = (0..alpha + beta - 1)
            .map(|_| MemoryBank::new(layout))
            .collect();

        let mut core = DyadicCore::new();
        let mut stats = MultRunStats::default();
        let rows = layout.rows;

        for (i, b1) in banks1.iter_mut().enumerate() {
            for (j, b2) in banks2.iter_mut().enumerate() {
                let t = i + j;
                for row in 0..rows {
                    // One cycle: fetch ME1 + ME2, nc dyadic ops, write ME3.
                    let me1 = b1.read_me(row);
                    let me2 = b2.read_me(row);
                    let acc = out_banks[t].read_me(row);
                    let mut me3 = vec![0u64; nc];
                    for l in 0..nc {
                        me3[l] = core.compute_acc(acc[l], me1[l], me2[l], &self.modulus);
                    }
                    out_banks[t].write_me(row, &me3);
                    stats.cycles = stats.cycles.saturating_add(1);
                }
            }
        }
        stats.dyadic_ops = core.ops();
        stats.me_reads = banks1.iter().map(MemoryBank::reads).sum::<u64>()
            + banks2.iter().map(MemoryBank::reads).sum::<u64>()
            + out_banks.iter().map(MemoryBank::reads).sum::<u64>();
        stats.me_writes = out_banks.iter().map(MemoryBank::writes).sum::<u64>();
        stats.latency = stats.cycles + CoreKind::Dyadic.pipeline_stages();

        let outputs = out_banks.iter().map(|b| b.dump(n).to_vec()).collect();
        (outputs, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heax_math::primes::generate_ntt_primes;

    fn modulus(n: usize) -> Modulus {
        Modulus::new(generate_ntt_primes(45, 1, n).unwrap()[0]).unwrap()
    }

    #[test]
    fn cycle_formulas_match_table7() {
        // Table 7 Dyadic: Stratix Set-A nc=16 → 256 cycles at n=4096;
        // Set-B → 512; Set-C → 1024.
        assert_eq!(MultModuleConfig::new(4096, 16).unwrap().pair_cycles(), 256);
        assert_eq!(MultModuleConfig::new(8192, 16).unwrap().pair_cycles(), 512);
        assert_eq!(
            MultModuleConfig::new(16384, 16).unwrap().pair_cycles(),
            1024
        );
    }

    #[test]
    fn algorithm5_on_one_residue() {
        let n = 64usize;
        let p = modulus(n);
        let sim = MultModuleSim::new(MultModuleConfig::new(n, 8).unwrap(), p).unwrap();
        let a0: Vec<u64> = (0..n as u64).map(|i| i + 1).collect();
        let a1: Vec<u64> = (0..n as u64).map(|i| 2 * i + 3).collect();
        let b0: Vec<u64> = (0..n as u64).map(|i| i * i % p.value()).collect();
        let b1: Vec<u64> = (0..n as u64).map(|i| (7 * i) % p.value()).collect();
        let (out, stats) = sim.multiply(&[a0.clone(), a1.clone()], &[b0.clone(), b1.clone()]);
        assert_eq!(out.len(), 3);
        for t in 0..n {
            assert_eq!(out[0][t], p.mul_mod(a0[t], b0[t]));
            assert_eq!(
                out[1][t],
                p.add_mod(p.mul_mod(a0[t], b1[t]), p.mul_mod(a1[t], b0[t]))
            );
            assert_eq!(out[2][t], p.mul_mod(a1[t], b1[t]));
        }
        // 4 pairwise products, n/nc cycles each.
        assert_eq!(stats.cycles, 4 * (n as u64 / 8));
        assert_eq!(stats.dyadic_ops, 4 * n as u64);
    }

    #[test]
    fn ciphertext_plaintext_mode() {
        let n = 32usize;
        let p = modulus(n);
        let sim = MultModuleSim::new(MultModuleConfig::new(n, 4).unwrap(), p).unwrap();
        let c0 = vec![3u64; n];
        let c1 = vec![5u64; n];
        let pt = vec![7u64; n];
        let (out, stats) = sim.multiply(&[c0, c1], &[pt]);
        assert_eq!(out.len(), 2);
        assert!(out[0].iter().all(|&x| x == 21));
        assert!(out[1].iter().all(|&x| x == 35));
        assert_eq!(stats.cycles, 2 * (n as u64 / 4));
    }

    #[test]
    fn three_by_two_general_case() {
        // A non-relinearized (3-component) operand times a fresh one.
        let n = 16usize;
        let p = modulus(n);
        let sim = MultModuleSim::new(MultModuleConfig::new(n, 4).unwrap(), p).unwrap();
        let a: Vec<Vec<u64>> = (0..3).map(|c| vec![c as u64 + 1; n]).collect();
        let b: Vec<Vec<u64>> = (0..2).map(|c| vec![10 * (c as u64 + 1); n]).collect();
        let (out, stats) = sim.multiply(&a, &b);
        assert_eq!(out.len(), 4);
        // out[1] = a0*b1 + a1*b0 = 1*20 + 2*10 = 40.
        assert!(out[1].iter().all(|&x| x == 40));
        // out[3] = a2*b1 = 3*20 = 60.
        assert!(out[3].iter().all(|&x| x == 60));
        assert_eq!(stats.cycles, 6 * (n as u64 / 4));
        // Transfer accounting: (α+β)·n in, (α+β−1)·n out.
        let cfg = sim.config();
        assert_eq!(cfg.input_transfer_words(3, 2), 5 * n as u64);
        assert_eq!(cfg.output_transfer_words(3, 2), 4 * n as u64);
    }

    #[test]
    fn module_resources_contain_cores_and_banks() {
        let cfg = MultModuleConfig::new(8192, 8).unwrap();
        let r = cfg.module_resources();
        assert_eq!(r.dsp, 8 * 22); // Table 3: 22 DSP per dyadic core
        assert!(r.m20k > 0);
    }

    #[test]
    fn config_validation() {
        assert!(MultModuleConfig::new(64, 3).is_err());
        assert!(MultModuleConfig::new(63, 4).is_err());
        assert!(MultModuleConfig::new(64, 128).is_err());
        assert!(MultModuleConfig::new(64, 64).is_ok());
    }
}
