//! Word-size trade-off model (Section 4, "Word Size and Native
//! Operations").
//!
//! The FPGAs' DSP units multiply 27-bit operands. HEAX chooses `w = 54`
//! (two DSP columns) instead of the CPU-natural `w = 64`:
//!
//! * a 54×54 multiplier tiles into **4** DSPs;
//! * a naive 64×64 multiplier needs **9** (3×3 tiles of 27 bits);
//! * Karatsuba/Toom-style recomposition brings 64×64 down to **5** DSPs
//!   plus extra ALM adders;
//! * narrowing the word may require more RNS moduli (`×64/54 ≈ 1.19`),
//!   which multiplies the whole datapath count.
//!
//! The paper reports a net 1.4×–2.25× DSP reduction depending on the
//! parameter set; this module reproduces that calculation so the
//! `ablation_wordsize` harness can regenerate it.

/// DSP operand width on both evaluation boards.
pub const DSP_WIDTH_BITS: u32 = 27;

/// Multiplier construction style for wide products.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MultiplierStyle {
    /// Straightforward tiling: `⌈w/27⌉²` DSPs.
    Naive,
    /// Karatsuba/Toom-Cook recomposition (the paper's "five 27-bit
    /// multipliers together with more bit-level and Addition operations"
    /// for 64-bit).
    ToomCook,
}

/// DSPs needed for one `w × w` multiplier.
pub fn dsps_per_multiplier(w: u32, style: MultiplierStyle) -> u32 {
    let tiles = w.div_ceil(DSP_WIDTH_BITS);
    match style {
        MultiplierStyle::Naive => tiles * tiles,
        MultiplierStyle::ToomCook => match tiles {
            0 | 1 => 1,
            2 => 3,                         // Karatsuba on 2 limbs
            3 => 5,                         // the paper's 64-bit figure (within 54..81-bit range)
            t => (t * (t + 1)) / 2 + t - 1, // generic sub-quadratic bound
        },
    }
}

/// Number of RNS moduli needed to cover `total_modulus_bits` with primes
/// of at most `w − 2` bits (the Algorithm 2 bound leaves 2 slack bits).
pub fn moduli_needed(total_modulus_bits: u32, w: u32) -> u32 {
    total_modulus_bits.div_ceil(w - 2)
}

/// Relative DSP cost of a full modular-multiplier array at word size `w`
/// for a parameter set with `total_modulus_bits`: multiplier cost × the
/// modulus count (datapaths replicate per RNS component).
pub fn datapath_dsp_cost(total_modulus_bits: u32, w: u32, style: MultiplierStyle) -> u64 {
    dsps_per_multiplier(w, style) as u64 * moduli_needed(total_modulus_bits, w) as u64
}

/// The paper's headline comparison: DSP reduction factor of the 54-bit
/// datapath over the 64-bit one for a given parameter set, at the given
/// 64-bit multiplier style.
pub fn reduction_factor(total_modulus_bits: u32, style64: MultiplierStyle) -> f64 {
    let w64 = datapath_dsp_cost(total_modulus_bits, 64, style64);
    let w54 = datapath_dsp_cost(total_modulus_bits, 54, MultiplierStyle::Naive);
    w64 as f64 / w54 as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multiplier_tiles_match_paper() {
        // "Naive construction of a 64-bit multiplier requires nine 27-bit
        // DSPs. Whereas, a 54-bit multiplier requires only four."
        assert_eq!(dsps_per_multiplier(64, MultiplierStyle::Naive), 9);
        assert_eq!(dsps_per_multiplier(54, MultiplierStyle::Naive), 4);
        // "leveraging more sophisticated multi-word multiplication
        // algorithms such as Toom-Cook, one can implement 64-bit
        // multiplication using five 27-bit multipliers".
        assert_eq!(dsps_per_multiplier(64, MultiplierStyle::ToomCook), 5);
        assert_eq!(dsps_per_multiplier(27, MultiplierStyle::Naive), 1);
    }

    #[test]
    fn modulus_count_inflation() {
        // "by reducing the bit-width of the RNS components, one may need
        // to increase the number of such components; roughly by 64/54 ≈ 1.2"
        // — the capacity model rounds that up to at most 1.5 for the
        // smallest set (3 vs 2 moduli for 109 bits).
        for bits in [109u32, 218, 438] {
            let k54 = moduli_needed(bits, 54);
            let k64 = moduli_needed(bits, 64);
            assert!(k54 >= k64);
            assert!((k54 as f64 / k64 as f64) <= 1.5, "bits={bits}");
        }
        // In practice the Table 2 chains use primes below 52 bits, so the
        // *actual* modulus count is word-size independent — the per-
        // multiplier ratio 9/4 = 2.25 is then the full saving.
        assert_eq!(
            dsps_per_multiplier(64, MultiplierStyle::Naive) as f64
                / dsps_per_multiplier(54, MultiplierStyle::Naive) as f64,
            2.25
        );
    }

    #[test]
    fn reduction_in_papers_range() {
        // "between 1.4x to 2.25x reduction in the number of DSP units
        // needed (depending on the HE parameters)": the capacity model
        // (worst case, extra moduli charged) gives 1.5x/1.8x/2.0x for the
        // three sets, and the matched-modulus case gives the 2.25x top —
        // exactly spanning the paper's range.
        for bits in [109u32, 218, 438] {
            let naive = reduction_factor(bits, MultiplierStyle::Naive);
            assert!((1.4..=2.25).contains(&naive), "bits={bits}: {naive}");
            let conservative = reduction_factor(bits, MultiplierStyle::ToomCook);
            assert!(conservative <= naive, "bits={bits}");
        }
        assert_eq!(reduction_factor(109, MultiplierStyle::Naive), 1.5);
        assert_eq!(reduction_factor(438, MultiplierStyle::Naive), 2.0);
    }
}
