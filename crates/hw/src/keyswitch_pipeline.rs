//! Pipeline scheduling model of the KeySwitch module (Section 4.3,
//! Figures 5 and 6).
//!
//! The module graph is `INTT0 → {NTT0 × m0} → {DyadMult × (m0+1)} →
//! (accumulate, k iterations) → {INTT1 × 2} → {NTT1 × 2} → {MS × 2}`.
//! Each KeySwitch processes `k` RNS components; per component the input
//! polynomial is INTT-ed once, NTT-ed into the other `k` moduli (including
//! the special prime), multiplied with both halves of the key-switching
//! key, and accumulated into two BRAM bank sets; after all `k` iterations
//! the special-prime accumulator rows are floored away (INTT1 → NTT1 →
//! MS = Modulus Switching).
//!
//! This module performs *scheduling*: a discrete-event simulation over
//! module instances with per-job durations given by the closed-form cycle
//! counts of the dataflow simulators. The steady-state initiation interval
//! it finds — `k · cycles(INTT0)` for all balanced configurations of
//! Table 5 — is what Table 8 converts into KeySwitch operations/second.
//! The functionally exact KeySwitch execution (real residues through real
//! module datapaths) lives in `heax-core::accel`, which composes this
//! schedule with the `ntt_dataflow`/`mult_dataflow` simulators.

use crate::HwError;

/// Architecture parameters of one KeySwitch module instance (a Table 5
/// row). Derived automatically in `heax-core::arch`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KeySwitchArch {
    /// Ring degree `n`.
    pub n: usize,
    /// Number of RNS components `k` of the ciphertext modulus.
    pub k: usize,
    /// Cores in the first INTT module.
    pub nc_intt0: usize,
    /// Number of first-layer NTT modules (`m0`).
    pub m0: usize,
    /// Cores per first-layer NTT module.
    pub nc_ntt0: usize,
    /// Number of DyadMult modules (`m0` for NTT outputs + 1 for the input
    /// polynomial).
    pub num_dyad: usize,
    /// Cores per DyadMult module.
    pub nc_dyad: usize,
    /// Cores per second-layer INTT module (2 instances).
    pub nc_intt1: usize,
    /// Cores per second-layer NTT module (2 instances).
    pub nc_ntt1: usize,
    /// Cores per MS (multiply-subtract) module (2 instances).
    pub nc_ms: usize,
}

impl KeySwitchArch {
    /// Validates power-of-two core counts and basic divisibility.
    ///
    /// # Errors
    ///
    /// [`HwError::InvalidConfig`] on violations.
    pub fn validate(&self) -> Result<(), HwError> {
        let pow2 = [
            self.n,
            self.nc_intt0,
            self.m0,
            self.nc_ntt0,
            self.nc_dyad,
            self.nc_intt1,
            self.nc_ntt1,
            self.nc_ms,
        ];
        for v in pow2 {
            if v == 0 || !v.is_power_of_two() {
                return Err(HwError::InvalidConfig {
                    reason: format!("KeySwitch arch parameter {v} must be a nonzero power of two"),
                });
            }
        }
        if self.num_dyad != self.m0 + 1 {
            return Err(HwError::InvalidConfig {
                reason: format!(
                    "num_dyad must be m0+1 (one per NTT0 module plus the input-poly module): {} vs {}",
                    self.num_dyad,
                    self.m0 + 1
                ),
            });
        }
        if self.k == 0 {
            return Err(HwError::InvalidConfig {
                reason: "k must be positive".into(),
            });
        }
        Ok(())
    }

    fn log_n(&self) -> u64 {
        self.n.trailing_zeros() as u64
    }

    /// Cycles for one INTT0 job (`n·log n / (2·nc)`).
    pub fn intt0_cycles(&self) -> u64 {
        self.n as u64 * self.log_n() / (2 * self.nc_intt0 as u64)
    }

    /// Cycles for one NTT0 job.
    pub fn ntt0_cycles(&self) -> u64 {
        self.n as u64 * self.log_n() / (2 * self.nc_ntt0 as u64)
    }

    /// Cycles for one DyadMult job: the module multiplies an NTT output
    /// with **two** key polynomials (`ksk = D0 | D1`), `2n/ncDYD`.
    pub fn dyad_cycles(&self) -> u64 {
        2 * self.n as u64 / self.nc_dyad as u64
    }

    /// Cycles for one INTT1 job.
    pub fn intt1_cycles(&self) -> u64 {
        self.n as u64 * self.log_n() / (2 * self.nc_intt1 as u64)
    }

    /// Cycles for one NTT1 job.
    pub fn ntt1_cycles(&self) -> u64 {
        self.n as u64 * self.log_n() / (2 * self.nc_ntt1 as u64)
    }

    /// Cycles for one MS (multiply-and-subtract) job over one residue.
    pub fn ms_cycles(&self) -> u64 {
        self.n as u64 / self.nc_ms as u64
    }

    /// Steady-state initiation interval: the bottleneck module's total
    /// occupancy per KeySwitch op. For balanced Table 5 configurations
    /// this is the INTT0 module: `k` jobs per op.
    pub fn steady_interval_cycles(&self) -> u64 {
        let intt0 = self.k as u64 * self.intt0_cycles();
        // NTT0 layer: k·k jobs spread over m0 modules.
        let ntt0 = (self.k * self.k) as u64 * self.ntt0_cycles() / self.m0 as u64;
        // Dyad layer: k jobs per NTT0-output module (each job covers both
        // key halves).
        let dyad = self.k as u64 * self.dyad_cycles();
        // Tail: per op, each INTT1 instance runs 1 job, each NTT1 instance
        // k jobs, each MS instance k jobs.
        let intt1 = self.intt1_cycles();
        let ntt1 = self.k as u64 * self.ntt1_cycles();
        let ms = self.k as u64 * self.ms_cycles();
        intt0.max(ntt0).max(dyad).max(intt1).max(ntt1).max(ms)
    }

    /// Steady-state interval of a **hoisted** rotation that reuses an
    /// already-decomposed input: the INTT0/NTT0 decomposition stages are
    /// skipped, so only the DyadMult accumulate and the modulus-switch
    /// tail (INTT1 → NTT1 → MS) bound the initiation interval.
    pub fn hoisted_interval_cycles(&self) -> u64 {
        let dyad = self.k as u64 * self.dyad_cycles();
        let intt1 = self.intt1_cycles();
        let ntt1 = self.k as u64 * self.ntt1_cycles();
        let ms = self.k as u64 * self.ms_cycles();
        dyad.max(intt1).max(ntt1).max(ms)
    }

    /// Input-polynomial buffer factor `f1 = ⌈3 + ncINTT0/ncNTT0⌉`
    /// (Section 4.3, "Data Dependency 1").
    pub fn f1(&self) -> u64 {
        3 + (self.nc_intt0 as u64).div_ceil(self.nc_ntt0 as u64)
    }

    /// Accumulator buffer factor
    /// `f2 = ⌈1 + m0·ncINTT1/ncNTT1 + ncINTT1·log n/ncMS⌉`
    /// ("Data Dependency 2").
    pub fn f2(&self) -> u64 {
        let a = self.m0 as f64 * self.nc_intt1 as f64 / self.nc_ntt1 as f64;
        let b = self.nc_intt1 as f64 * self.log_n() as f64 / self.nc_ms as f64;
        (1.0 + a + b).ceil() as u64
    }

    /// Table 5-style architecture summary string, e.g.
    /// `1×INTT(16)→4×NTT(16)→5×Dyad(8)→2×INTT(4)→2×NTT(16)→2×Mult(4)`.
    pub fn summary(&self) -> String {
        format!(
            "1xINTT({}) -> {}xNTT({}) -> {}xDyad({}) -> 2xINTT({}) -> 2xNTT({}) -> 2xMult({})",
            self.nc_intt0,
            self.m0,
            self.nc_ntt0,
            self.num_dyad,
            self.nc_dyad,
            self.nc_intt1,
            self.nc_ntt1,
            self.nc_ms
        )
    }
}

/// Module stations of the pipeline (for trace events).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Station {
    /// First INTT module.
    Intt0,
    /// First-layer NTT module `idx`.
    Ntt0(usize),
    /// DyadMult module `idx` (the last index is the input-poly module).
    Dyad(usize),
    /// Second-layer INTT module `idx ∈ {0, 1}`.
    Intt1(usize),
    /// Second-layer NTT module `idx ∈ {0, 1}`.
    Ntt1(usize),
    /// Modulus-switch (multiply-subtract) module `idx ∈ {0, 1}`.
    Ms(usize),
}

impl core::fmt::Display for Station {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Station::Intt0 => write!(f, "INTT0"),
            Station::Ntt0(i) => write!(f, "NTT0[{i}]"),
            Station::Dyad(i) => write!(f, "DYAD[{i}]"),
            Station::Intt1(i) => write!(f, "INTT1[{i}]"),
            Station::Ntt1(i) => write!(f, "NTT1[{i}]"),
            Station::Ms(i) => write!(f, "MS[{i}]"),
        }
    }
}

/// One scheduled job in the pipeline trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PipelineEvent {
    /// Which module instance ran the job.
    pub station: Station,
    /// KeySwitch operation index.
    pub op: usize,
    /// RNS iteration within the op (`k` per op; tail jobs use `k`).
    pub iteration: usize,
    /// Start cycle.
    pub start: u64,
    /// End cycle (exclusive).
    pub end: u64,
}

/// Result of scheduling `num_ops` back-to-back KeySwitch operations.
#[derive(Clone, Debug)]
pub struct KeySwitchSchedule {
    /// All jobs, in dispatch order.
    pub events: Vec<PipelineEvent>,
    /// Completion cycle of each op (its last MS job).
    pub op_completion: Vec<u64>,
    /// Measured steady-state initiation interval (cycle distance between
    /// consecutive op completions once the pipeline is warm).
    pub steady_interval: u64,
    /// Latency of the first op (fill + drain).
    pub first_op_latency: u64,
}

impl KeySwitchSchedule {
    /// Number of input-polynomial buffers the schedule actually needs
    /// ("Data Dependency 1"): an op's input buffer is live from its first
    /// INTT0 job until the input-poly DyadMult module (the last Dyad
    /// station) finishes the op's final iteration. The paper provisions
    /// `f1 = ⌈3 + ncINTT0/ncNTT0⌉` buffers; this measures the ground
    /// truth from event overlap.
    pub fn input_buffers_needed(&self) -> u64 {
        let last_dyad = self
            .events
            .iter()
            .filter_map(|e| match e.station {
                Station::Dyad(i) => Some(i),
                _ => None,
            })
            .max()
            .unwrap_or(0);
        self.max_span_overlap(
            |e, op| e.op == op,
            |e, op| e.op == op && e.station == Station::Dyad(last_dyad),
        )
    }

    /// Number of accumulator buffer sets needed ("Data Dependency 2"):
    /// live from an op's first DyadMult write to its last NTT1 read.
    /// Compare against `f2`.
    pub fn accumulator_buffers_needed(&self) -> u64 {
        self.max_span_overlap(
            |e, op| e.op == op && matches!(e.station, Station::Dyad(_)),
            |e, op| e.op == op && matches!(e.station, Station::Ntt1(_)),
        )
    }

    /// Maximum number of concurrently live per-op spans, where a span
    /// begins at the first event matching `begin` and ends at the last
    /// event matching `end`.
    fn max_span_overlap(
        &self,
        begin: impl Fn(&PipelineEvent, usize) -> bool,
        end: impl Fn(&PipelineEvent, usize) -> bool,
    ) -> u64 {
        let num_ops = self
            .events
            .iter()
            .map(|e| e.op)
            .max()
            .map(|m| m + 1)
            .unwrap_or(0);
        let mut spans = Vec::new();
        for op in 0..num_ops {
            let start = self
                .events
                .iter()
                .filter(|e| begin(e, op))
                .map(|e| e.start)
                .min();
            let finish = self
                .events
                .iter()
                .filter(|e| end(e, op))
                .map(|e| e.end)
                .max();
            if let (Some(s), Some(f)) = (start, finish) {
                spans.push((s, f));
            }
        }
        let mut max_overlap = 0u64;
        for &(s, _) in &spans {
            let live = spans.iter().filter(|&&(a, b)| a <= s && s < b).count();
            max_overlap = max_overlap.max(live as u64);
        }
        max_overlap
    }

    /// Busy cycles per station, for utilization reports.
    pub fn station_busy(&self) -> Vec<(Station, u64)> {
        let mut acc: Vec<(Station, u64)> = Vec::new();
        for e in &self.events {
            match acc.iter_mut().find(|(s, _)| *s == e.station) {
                Some((_, c)) => *c += e.end - e.start,
                None => acc.push((e.station, e.end - e.start)),
            }
        }
        acc
    }

    /// Renders an ASCII Gantt chart of the first `max_cycles` cycles
    /// (the Figure 6 artifact).
    pub fn gantt(&self, max_cycles: u64, width: usize) -> String {
        let mut stations: Vec<Station> = Vec::new();
        for e in &self.events {
            if !stations.contains(&e.station) {
                stations.push(e.station);
            }
        }
        let scale = max_cycles as f64 / width as f64;
        let mut out = String::new();
        for s in stations {
            let mut row = vec![b'.'; width];
            for e in self.events.iter().filter(|e| e.station == s) {
                if e.start >= max_cycles {
                    continue;
                }
                let from = (e.start as f64 / scale) as usize;
                let to = (((e.end.min(max_cycles)) as f64 / scale) as usize).max(from + 1);
                let glyph = b'0' + (e.op % 10) as u8;
                for c in row.iter_mut().take(to.min(width)).skip(from) {
                    *c = glyph;
                }
            }
            out.push_str(&format!("{:>9} |", s.to_string()));
            out.push_str(core::str::from_utf8(&row).expect("ascii"));
            out.push('\n');
        }
        out
    }
}

/// Schedules `num_ops` KeySwitch operations through the module graph.
///
/// Jobs are dispatched in dataflow order with resource (module) exclusivity
/// and data dependencies; every module is internally pipelined but
/// processes one polynomial at a time, matching the paper's "output
/// memory" hand-off design.
///
/// # Errors
///
/// Propagates [`KeySwitchArch::validate`].
pub fn schedule(arch: &KeySwitchArch, num_ops: usize) -> Result<KeySwitchSchedule, HwError> {
    arch.validate()?;
    let k = arch.k;
    let mut events = Vec::new();
    let mut op_completion = vec![0u64; num_ops];

    // Module availability times.
    let mut intt0_free = 0u64;
    let mut ntt0_free = vec![0u64; arch.m0];
    let mut dyad_free = vec![0u64; arch.num_dyad];
    let mut intt1_free = [0u64; 2];
    let mut ntt1_free = [0u64; 2];
    let mut ms_free = [0u64; 2];

    // Accumulator banks are provisioned f2-deep (Section 4.3, "Data
    // Dependency 2") precisely so that later ops' DyadMult writes never
    // stall on the previous ops' tail reads; the schedule therefore only
    // carries *module* exclusivity and dataflow dependencies.
    for (op, op_done_slot) in op_completion.iter_mut().enumerate() {
        // --- k iterations of INTT0 → NTT0 → Dyad ------------------------
        let mut dyad_done_all = 0u64;
        for iter in 0..k {
            let s = intt0_free;
            let e = s + arch.intt0_cycles();
            intt0_free = e;
            events.push(PipelineEvent {
                station: Station::Intt0,
                op,
                iteration: iter,
                start: s,
                end: e,
            });
            let intt_done = e;

            // k NTT0 jobs (other moduli + special prime), round-robin.
            let mut iter_ntt_done = vec![0u64; k];
            for (j, slot) in iter_ntt_done.iter_mut().enumerate() {
                let m = j % arch.m0;
                let s = ntt0_free[m].max(intt_done);
                let e = s + arch.ntt0_cycles();
                ntt0_free[m] = e;
                *slot = e;
                events.push(PipelineEvent {
                    station: Station::Ntt0(m),
                    op,
                    iteration: iter,
                    start: s,
                    end: e,
                });
            }

            // Dyad jobs: module d handles NTT0 module d's outputs; the
            // extra module handles the input polynomial (which is ready at
            // intt_done — its dyad is synchronized with the others).
            let sync_start = iter_ntt_done.iter().copied().max().unwrap_or(intt_done);
            for (d, free) in dyad_free.iter_mut().enumerate() {
                let s = (*free).max(sync_start);
                let e = s + arch.dyad_cycles();
                *free = e;
                dyad_done_all = dyad_done_all.max(e);
                events.push(PipelineEvent {
                    station: Station::Dyad(d),
                    op,
                    iteration: iter,
                    start: s,
                    end: e,
                });
            }
        }

        // --- Tail: INTT1 → NTT1 → MS for both output polynomials --------
        let mut op_done = 0u64;
        for poly in 0..2 {
            let s = intt1_free[poly].max(dyad_done_all);
            let e = s + arch.intt1_cycles();
            intt1_free[poly] = e;
            events.push(PipelineEvent {
                station: Station::Intt1(poly),
                op,
                iteration: k,
                start: s,
                end: e,
            });
            let mut ntt_done = e;
            for _j in 0..k {
                let s = ntt1_free[poly].max(ntt_done);
                let e2 = s + arch.ntt1_cycles();
                ntt1_free[poly] = e2;
                events.push(PipelineEvent {
                    station: Station::Ntt1(poly),
                    op,
                    iteration: k,
                    start: s,
                    end: e2,
                });
                // MS consumes each NTT1 output residue as it appears.
                let ms_s = ms_free[poly].max(e2);
                let ms_e = ms_s + arch.ms_cycles();
                ms_free[poly] = ms_e;
                events.push(PipelineEvent {
                    station: Station::Ms(poly),
                    op,
                    iteration: k,
                    start: ms_s,
                    end: ms_e,
                });
                ntt_done = e2;
                op_done = op_done.max(ms_e);
            }
        }
        *op_done_slot = op_done;
    }

    let steady_interval = if num_ops >= 3 {
        op_completion[num_ops - 1] - op_completion[num_ops - 2]
    } else {
        arch.steady_interval_cycles()
    };
    let first_op_latency = op_completion.first().copied().unwrap_or(0);
    Ok(KeySwitchSchedule {
        events,
        op_completion,
        steady_interval,
        first_op_latency,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Table 5 row: Stratix 10, Set-B (n = 2^13, k = 4).
    fn set_b_stratix() -> KeySwitchArch {
        KeySwitchArch {
            n: 8192,
            k: 4,
            nc_intt0: 16,
            m0: 4,
            nc_ntt0: 16,
            num_dyad: 5,
            nc_dyad: 8,
            nc_intt1: 4,
            nc_ntt1: 16,
            nc_ms: 4,
        }
    }

    /// Table 5 row: Stratix 10, Set-A (n = 2^12, k = 2).
    fn set_a_stratix() -> KeySwitchArch {
        KeySwitchArch {
            n: 4096,
            k: 2,
            nc_intt0: 16,
            m0: 2,
            nc_ntt0: 16,
            num_dyad: 3,
            nc_dyad: 8,
            nc_intt1: 8,
            nc_ntt1: 16,
            nc_ms: 4,
        }
    }

    #[test]
    fn steady_interval_matches_table8() {
        // Set-A Stratix: 300 MHz / 97656 ops/s = 3072 cycles = 2·1536.
        let a = set_a_stratix();
        assert_eq!(a.steady_interval_cycles(), 3072);
        // Set-B Stratix: 300 MHz / 22536 ops/s = 13312 cycles = 4·3328.
        let b = set_b_stratix();
        assert_eq!(b.steady_interval_cycles(), 13312);
    }

    #[test]
    fn simulated_interval_matches_closed_form() {
        for arch in [set_a_stratix(), set_b_stratix()] {
            let sched = schedule(&arch, 8).unwrap();
            assert_eq!(
                sched.steady_interval,
                arch.steady_interval_cycles(),
                "{}",
                arch.summary()
            );
            // Completions strictly increase.
            for w in sched.op_completion.windows(2) {
                assert!(w[1] > w[0]);
            }
        }
    }

    #[test]
    fn bottleneck_is_intt0_for_balanced_configs() {
        for arch in [set_a_stratix(), set_b_stratix()] {
            assert_eq!(
                arch.steady_interval_cycles(),
                arch.k as u64 * arch.intt0_cycles()
            );
        }
    }

    #[test]
    fn buffer_factors() {
        let b = set_b_stratix();
        // f1 = ceil(3 + 16/16) = 4 (quadruple buffering, Section 5.2).
        assert_eq!(b.f1(), 4);
        // f2 = ceil(1 + 4·4/16 + 4·13/4) = ceil(15) = 15.
        assert_eq!(b.f2(), 15);
    }

    #[test]
    fn event_invariants() {
        let arch = set_b_stratix();
        let sched = schedule(&arch, 4).unwrap();
        // No two events on one station overlap.
        for s in sched.station_busy().iter().map(|(s, _)| *s) {
            let mut evs: Vec<_> = sched.events.iter().filter(|e| e.station == s).collect();
            evs.sort_by_key(|e| e.start);
            for w in evs.windows(2) {
                assert!(w[1].start >= w[0].end, "overlap on {s}");
            }
        }
        // Per op: k INTT0 jobs, k·k NTT0 jobs, k·(m0+1) dyad jobs.
        let k = arch.k;
        let intt0_jobs = sched
            .events
            .iter()
            .filter(|e| e.station == Station::Intt0 && e.op == 1)
            .count();
        assert_eq!(intt0_jobs, k);
        let ntt0_jobs = sched
            .events
            .iter()
            .filter(|e| matches!(e.station, Station::Ntt0(_)) && e.op == 1)
            .count();
        assert_eq!(ntt0_jobs, k * k);
        let dyad_jobs = sched
            .events
            .iter()
            .filter(|e| matches!(e.station, Station::Dyad(_)) && e.op == 1)
            .count();
        assert_eq!(dyad_jobs, k * arch.num_dyad);
    }

    #[test]
    fn pipeline_overlaps_ops() {
        // Figure 6: multiple KeySwitch ops in flight — op 1's INTT0 work
        // starts before op 0 completes.
        let arch = set_b_stratix();
        let sched = schedule(&arch, 4).unwrap();
        let op0_done = sched.op_completion[0];
        let op1_first = sched
            .events
            .iter()
            .filter(|e| e.op == 1)
            .map(|e| e.start)
            .min()
            .unwrap();
        assert!(op1_first < op0_done, "pipeline must overlap operations");
    }

    #[test]
    fn f1_provisioning_covers_measured_input_buffer_demand() {
        // The paper's f1 formula must be an upper bound on the measured
        // overlap, and plain double buffering must be insufficient
        // (which is why §5.2 prescribes quadruple buffering).
        for arch in [set_a_stratix(), set_b_stratix()] {
            let sched = schedule(&arch, 10).unwrap();
            let needed = sched.input_buffers_needed();
            assert!(
                needed <= arch.f1(),
                "{}: measured {needed} > f1 {}",
                arch.summary(),
                arch.f1()
            );
            // Compute-only overlap is 2 ops deep; the host additionally
            // writes the *next* op's input over PCIe while both are live
            // (§5.2), so with write-ahead demand exceeds double buffering —
            // hence the prescribed quadruple buffering.
            let with_writeahead = needed + 1;
            assert!(with_writeahead > 2, "{}", arch.summary());
            assert!(with_writeahead <= arch.f1(), "{}", arch.summary());
        }
    }

    #[test]
    fn f2_provisioning_covers_measured_accumulator_demand() {
        for arch in [set_a_stratix(), set_b_stratix()] {
            let sched = schedule(&arch, 10).unwrap();
            let needed = sched.accumulator_buffers_needed();
            assert!(
                needed <= arch.f2(),
                "{}: measured {needed} > f2 {}",
                arch.summary(),
                arch.f2()
            );
            assert!(needed >= 1);
        }
    }

    #[test]
    fn gantt_renders() {
        let arch = set_a_stratix();
        let sched = schedule(&arch, 3).unwrap();
        let g = sched.gantt(sched.op_completion[2], 100);
        assert!(g.contains("INTT0"));
        assert!(g.contains("MS[1]"));
        assert!(g.lines().count() >= 6);
    }

    #[test]
    fn validation_rejects_bad_arch() {
        let mut a = set_a_stratix();
        a.num_dyad = 7;
        assert!(schedule(&a, 1).is_err());
        let mut b = set_a_stratix();
        b.nc_ntt0 = 3;
        assert!(b.validate().is_err());
        let mut c = set_a_stratix();
        c.k = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn summary_format() {
        assert_eq!(
            set_b_stratix().summary(),
            "1xINTT(16) -> 4xNTT(16) -> 5xDyad(8) -> 2xINTT(4) -> 2xNTT(16) -> 2xMult(4)"
        );
    }
}
