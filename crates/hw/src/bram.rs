//! On-chip memory model: M20K block RAMs, word packing, and memory
//! elements (MEs).
//!
//! Section 4.2 ("Memory Utilization and Word-Packing"): each M20K holds
//! 512 × 40-bit words and supports one read and one write per cycle. A
//! *memory element* is one row across a group of parallel M20Ks — the unit
//! the NTT/MULT modules fetch per cycle. Storing β coefficients of
//! `w = 54` bits per row:
//!
//! * **naive** (one coefficient per physical BRAM): 54/80 = 68 % width
//!   utilization (each coefficient needs 2 40-bit columns);
//! * **packed** (paper's scheme): `⌈β·54/40⌉` M20K columns,
//!   `β·54/(⌈β·54/40⌉·40)` utilization — > 98 % for β = 8.

use crate::board::M20K_BITS;
use crate::resources::Resources;

/// Depth of an M20K unit in rows.
pub const M20K_DEPTH: u64 = 512;
/// Width of an M20K unit in bits.
pub const M20K_WIDTH: u64 = 40;
/// Native coefficient width of the HEAX datapath.
pub const HW_WORD_BITS: u64 = 54;

/// Layout of one logical memory bank: `rows` memory elements of `beta`
/// packed words each.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BankLayout {
    /// Words (coefficients) per memory element.
    pub beta: u64,
    /// Number of memory elements (rows).
    pub rows: u64,
    /// Bits per stored word.
    pub word_bits: u64,
}

impl BankLayout {
    /// Bank storing an `n`-coefficient polynomial with `beta` coefficients
    /// per ME at the native 54-bit width.
    pub fn polynomial(n: u64, beta: u64) -> Self {
        Self {
            beta,
            rows: n.div_ceil(beta),
            word_bits: HW_WORD_BITS,
        }
    }

    /// M20K columns needed for one row (packed scheme).
    pub fn m20k_columns(&self) -> u64 {
        (self.beta * self.word_bits).div_ceil(M20K_WIDTH)
    }

    /// M20K units needed for the whole bank: columns × depth replication.
    pub fn m20k_units(&self) -> u64 {
        self.m20k_columns() * self.rows.div_ceil(M20K_DEPTH)
    }

    /// Payload bits actually stored.
    pub fn payload_bits(&self) -> u64 {
        self.beta * self.rows * self.word_bits
    }

    /// Width-wise utilization of the packed scheme
    /// (`β·w / (⌈β·w/40⌉·40)`), the §4.2 formula.
    pub fn width_utilization(&self) -> f64 {
        let used = (self.beta * self.word_bits) as f64;
        let provisioned = (self.m20k_columns() * M20K_WIDTH) as f64;
        used / provisioned
    }

    /// Depth-wise utilization: fraction of the 512 rows in use
    /// (full when `n/β ≥ 512`).
    pub fn depth_utilization(&self) -> f64 {
        let rows_per_unit = self.rows.div_ceil(self.rows.div_ceil(M20K_DEPTH));
        rows_per_unit.min(M20K_DEPTH) as f64 / M20K_DEPTH as f64
    }

    /// Overall utilization (width × depth).
    pub fn utilization(&self) -> f64 {
        self.width_utilization() * self.depth_utilization()
    }

    /// Resource bundle for this bank (provisioned bits, not payload).
    pub fn resources(&self) -> Resources {
        Resources::memory(self.m20k_units() * M20K_BITS, self.m20k_units())
    }

    /// Naive layout for comparison: each coefficient in its own M20K
    /// column pair (54 bits in 2 × 40-bit columns) — the 68 % baseline the
    /// paper cites.
    pub fn naive_m20k_units(&self) -> u64 {
        let cols_per_word = HW_WORD_BITS.div_ceil(M20K_WIDTH); // = 2
        self.beta * cols_per_word * self.rows.div_ceil(M20K_DEPTH)
    }

    /// Width utilization of the naive layout.
    pub fn naive_width_utilization(&self) -> f64 {
        HW_WORD_BITS as f64 / (HW_WORD_BITS.div_ceil(M20K_WIDTH) * M20K_WIDTH) as f64
    }
}

/// A simulated dual-port memory bank of MEs with one-read-one-write-per-
/// cycle accounting. Backing store is plain `u64` words; the `word_bits`
/// field only drives resource accounting.
#[derive(Clone, Debug)]
pub struct MemoryBank {
    layout: BankLayout,
    data: Vec<u64>,
    reads: u64,
    writes: u64,
}

impl MemoryBank {
    /// Zero-initialized bank.
    pub fn new(layout: BankLayout) -> Self {
        Self {
            layout,
            data: vec![0; (layout.beta * layout.rows) as usize],
            reads: 0,
            writes: 0,
        }
    }

    /// Bank layout.
    pub fn layout(&self) -> &BankLayout {
        &self.layout
    }

    /// Loads a polynomial into the bank, row-major.
    ///
    /// # Panics
    ///
    /// Panics if `poly.len()` exceeds the bank capacity.
    pub fn load(&mut self, poly: &[u64]) {
        assert!(poly.len() <= self.data.len(), "polynomial exceeds bank");
        self.data[..poly.len()].copy_from_slice(poly);
        for slot in &mut self.data[poly.len()..] {
            *slot = 0;
        }
    }

    /// Reads memory element `row` (one cycle, one port).
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    pub fn read_me(&mut self, row: u64) -> Vec<u64> {
        assert!(row < self.layout.rows, "ME row {row} out of range");
        self.reads += 1;
        let beta = self.layout.beta as usize;
        let start = row as usize * beta;
        self.data[start..start + beta].to_vec()
    }

    /// Writes memory element `row` (one cycle, one port).
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range or `me` has the wrong width.
    pub fn write_me(&mut self, row: u64, me: &[u64]) {
        assert!(row < self.layout.rows, "ME row {row} out of range");
        assert_eq!(me.len(), self.layout.beta as usize, "ME width mismatch");
        self.writes += 1;
        let beta = self.layout.beta as usize;
        let start = row as usize * beta;
        self.data[start..start + beta].copy_from_slice(me);
    }

    /// Dumps the full contents (first `n` words).
    pub fn dump(&self, n: usize) -> &[u64] {
        &self.data[..n]
    }

    /// ME reads issued.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// ME writes issued.
    pub fn writes(&self) -> u64 {
        self.writes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packing_beats_naive() {
        // β = 8: paper says > 98 % width utilization vs 68 % naive.
        let bank = BankLayout::polynomial(8192, 8);
        assert!(bank.width_utilization() > 0.98);
        assert!((bank.naive_width_utilization() - 0.675).abs() < 1e-9);
        assert!(bank.m20k_units() < bank.naive_m20k_units());
        // 8 * 54 = 432 bits → 11 columns of 40.
        assert_eq!(bank.m20k_columns(), 11);
    }

    #[test]
    fn depth_rule_of_section_4_2() {
        // n/β ≥ 512 ⇒ fully utilized depth-wise.
        let full = BankLayout::polynomial(8192, 16); // 512 rows exactly
        assert_eq!(full.rows, 512);
        assert!((full.depth_utilization() - 1.0).abs() < 1e-12);
        // n = 2^12, β = 2·16 = 32 (the paper's exception): half utilized.
        let half = BankLayout::polynomial(4096, 32);
        assert_eq!(half.rows, 128);
        assert!((half.depth_utilization() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn resources_scale_with_columns() {
        let bank = BankLayout::polynomial(8192, 8);
        let r = bank.resources();
        assert_eq!(r.m20k, bank.m20k_units());
        assert_eq!(r.bram_bits, bank.m20k_units() * M20K_BITS);
        assert!(bank.payload_bits() <= r.bram_bits);
    }

    #[test]
    fn memory_bank_read_write() {
        let mut bank = MemoryBank::new(BankLayout::polynomial(64, 8));
        let poly: Vec<u64> = (0..64).collect();
        bank.load(&poly);
        let me0 = bank.read_me(0);
        assert_eq!(me0, (0..8).collect::<Vec<u64>>());
        let me7 = bank.read_me(7);
        assert_eq!(me7[0], 56);
        bank.write_me(3, &[9; 8]);
        assert_eq!(bank.read_me(3), vec![9; 8]);
        assert_eq!(bank.reads(), 3);
        assert_eq!(bank.writes(), 1);
        assert_eq!(bank.dump(8), (0..8).collect::<Vec<u64>>().as_slice());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oob_read_panics() {
        let mut bank = MemoryBank::new(BankLayout::polynomial(64, 8));
        bank.read_me(8);
    }
}
