//! Cycle-accurate, functionally exact simulation of the HEAX NTT/INTT
//! module (Section 4.2, Figures 2–4).
//!
//! The module stores the polynomial across `ncNTT` parallel BRAM groups;
//! one *memory element* (ME) — a row across the groups — is fetched per
//! cycle. After the "Two-Stage Read, Compute, and Write" optimization
//! (Figure 4) each ME holds `2·ncNTT` consecutive coefficients, so the
//! `ncNTT` butterfly cores are fully utilized in every stage:
//!
//! * **Type-1 stages** (butterfly distance ≥ ME size): coefficient pairs
//!   straddle two MEs. The module reads two MEs in two cycles, computes
//!   two MEs worth of butterflies in the next two, and writes both back —
//!   pipelined, sustaining one ME per cycle.
//! * **Type-2 stages** (distance < ME size): pairs live inside a single
//!   ME; the customized multiplexers (Figure 3) route coefficients to
//!   cores. One ME per cycle.
//!
//! Every stage is processed **in place** (`n/(2·ncNTT)` MEs per stage,
//! `log n` stages), giving the paper's cycle count
//! `n·log n / (2·ncNTT)` with no intermediate BRAM. The simulator moves
//! real residues through modeled [`MemoryBank`]s and butterfly cores and
//! is checked bit-exactly against the software NTT of `heax-math`.

use heax_math::ntt::NttTable;

use crate::bram::{BankLayout, MemoryBank};
use crate::cores::{check_hw_modulus, CoreKind, InttCore, NttCore};
use crate::resources::Resources;
use crate::HwError;

/// Access-pattern classification of a stage (Figure 2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StageKind {
    /// Butterfly partners live in different MEs.
    Type1,
    /// Butterfly partners live within one ME.
    Type2,
}

/// Static configuration of an NTT/INTT module.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NttModuleConfig {
    /// Ring degree `n`.
    pub n: usize,
    /// Number of butterfly cores (`ncNTT`).
    pub num_cores: usize,
}

impl NttModuleConfig {
    /// Validated configuration.
    ///
    /// # Errors
    ///
    /// [`HwError::InvalidConfig`] unless `n` and `num_cores` are powers of
    /// two with `4·num_cores ≤ n` (each ME of `2·nc` words must cover at
    /// most half the polynomial so that at least one Type-1 stage exists).
    pub fn new(n: usize, num_cores: usize) -> Result<Self, HwError> {
        if !n.is_power_of_two() || !num_cores.is_power_of_two() || num_cores == 0 {
            return Err(HwError::InvalidConfig {
                reason: format!("n={n} and num_cores={num_cores} must be powers of two"),
            });
        }
        if 4 * num_cores > n {
            return Err(HwError::InvalidConfig {
                reason: format!("num_cores={num_cores} too large for n={n} (need 4·nc ≤ n)"),
            });
        }
        Ok(Self { n, num_cores })
    }

    /// Coefficients per memory element (`2·ncNTT`, the doubled MEs of the
    /// optimized pipeline).
    pub fn me_words(&self) -> usize {
        2 * self.num_cores
    }

    /// Number of data MEs (`n / (2·ncNTT)`).
    pub fn num_mes(&self) -> usize {
        self.n / self.me_words()
    }

    /// `log₂ n`.
    pub fn log_n(&self) -> u32 {
        self.n.trailing_zeros()
    }

    /// `log₂ ncNTT`.
    pub fn log_nc(&self) -> u32 {
        self.num_cores.trailing_zeros()
    }

    /// Stage classification for forward-NTT stage `i` (0-based, blocks
    /// `m = 2^i`): Type 1 for the first `log n − log nc − 1` stages.
    pub fn stage_kind(&self, stage: u32) -> StageKind {
        if stage < self.log_n() - self.log_nc() - 1 {
            StageKind::Type1
        } else {
            StageKind::Type2
        }
    }

    /// Steady-state cycles for one transform: `n·log n / (2·ncNTT)`
    /// (Section 4.2, "Performance").
    pub fn transform_cycles(&self) -> u64 {
        (self.n as u64 * self.log_n() as u64) / (2 * self.num_cores as u64)
    }

    /// Cycles for one transform under the **basic** (pre-optimization)
    /// pipeline of Figure 4: Type-1 stages insert a 50 % bubble, doubling
    /// their compute slots.
    pub fn transform_cycles_basic(&self) -> u64 {
        let per_stage = (self.n as u64) / (2 * self.num_cores as u64);
        let t1 = (self.log_n() - self.log_nc() - 1) as u64;
        let t2 = self.log_n() as u64 - t1;
        t1 * 2 * per_stage + t2 * per_stage
    }

    /// Core utilization of the basic pipeline (optimized is 1.0) — the
    /// Figure 4 comparison.
    pub fn basic_pipeline_utilization(&self) -> f64 {
        self.transform_cycles() as f64 / self.transform_cycles_basic() as f64
    }

    /// Logic resources of the module: `nc` cores plus the super-linear
    /// multiplexer overhead `O(nc·log nc)` the paper attributes to the
    /// customized MUX trees (Section 4.3).
    pub fn module_resources(&self, kind: CoreKind) -> Resources {
        let cores = kind.cost() * self.num_cores as u64;
        // Customized MUXes: 4·nc muxes of log(2nc) inputs on each side of
        // the cores, ~54-bit wide; modeled as ALM/REG cost per selectable
        // input (one 6-LUT handles ~2 bits of a 2:1 mux).
        let mux_inputs = 4 * self.num_cores as u64 * (self.log_nc() as u64 + 1);
        let mux = Resources::logic(0, mux_inputs * 54, mux_inputs * 27);
        // Data memory: nc parallel groups of doubled MEs + output memory +
        // twiddle memories (n twiddles of 54 bits packed nc-wide).
        let data = BankLayout::polynomial(self.n as u64, self.me_words() as u64);
        let out = data;
        let twiddle = BankLayout::polynomial(self.n as u64, self.num_cores as u64);
        let twiddle_prec = twiddle; // MulRed precomputed quotients
        cores
            + mux
            + data.resources()
            + out.resources()
            + twiddle.resources()
            + twiddle_prec.resources()
    }
}

/// Run statistics from a simulated transform.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct NttRunStats {
    /// Initiation-interval cycles (steady-state occupancy of the module).
    pub cycles: u64,
    /// Total latency including core pipeline fill.
    pub latency: u64,
    /// Data-memory ME reads.
    pub me_reads: u64,
    /// Data-memory ME writes.
    pub me_writes: u64,
    /// Twiddle-memory ME reads.
    pub twiddle_me_reads: u64,
    /// Butterflies executed (must equal `n/2·log n`).
    pub butterflies: u64,
    /// Stage classification sequence.
    pub stage_kinds: Vec<StageKind>,
}

/// Cycle-accurate NTT/INTT module simulator bound to one twiddle table.
#[derive(Clone, Debug)]
pub struct NttModuleSim<'a> {
    config: NttModuleConfig,
    table: &'a NttTable,
}

impl<'a> NttModuleSim<'a> {
    /// Binds a module configuration to a twiddle table.
    ///
    /// # Errors
    ///
    /// [`HwError::InvalidConfig`] on degree mismatch;
    /// [`HwError::ModulusTooWide`] if the modulus exceeds the 52-bit
    /// datapath bound.
    pub fn new(config: NttModuleConfig, table: &'a NttTable) -> Result<Self, HwError> {
        if table.n() != config.n {
            return Err(HwError::InvalidConfig {
                reason: format!("table degree {} != module degree {}", table.n(), config.n),
            });
        }
        check_hw_modulus(table.modulus())?;
        Ok(Self { config, table })
    }

    /// The configuration.
    pub fn config(&self) -> &NttModuleConfig {
        &self.config
    }

    /// Simulates a forward NTT through the banked-memory dataflow,
    /// returning the transformed polynomial and run statistics.
    ///
    /// # Panics
    ///
    /// Panics if `poly.len() != n`.
    pub fn forward(&self, poly: &[u64]) -> (Vec<u64>, NttRunStats) {
        assert_eq!(poly.len(), self.config.n, "polynomial length mismatch");
        let n = self.config.n;
        let log_n = self.config.log_n();
        let mut bank = MemoryBank::new(BankLayout::polynomial(
            n as u64,
            self.config.me_words() as u64,
        ));
        bank.load(poly);
        let mut core = NttCore::new();
        let mut stats = NttRunStats::default();

        for stage in 0..log_n {
            let m = 1usize << stage; // number of butterfly blocks
            stats.stage_kinds.push(self.config.stage_kind(stage));
            self.run_forward_stage(stage, m, &mut bank, &mut core, &mut stats);
            stats.cycles = stats
                .cycles
                .saturating_add((n / self.config.me_words()) as u64);
        }
        stats.me_reads = bank.reads();
        stats.me_writes = bank.writes();
        stats.butterflies = core.butterflies();
        stats.latency = stats.cycles + CoreKind::Ntt.pipeline_stages() + 4;
        (bank.dump(n).to_vec(), stats)
    }

    fn run_forward_stage(
        &self,
        stage: u32,
        m: usize,
        bank: &mut MemoryBank,
        core: &mut NttCore,
        stats: &mut NttRunStats,
    ) {
        let n = self.config.n;
        let me_words = self.config.me_words();
        let t = n >> (stage + 1); // butterfly distance
        let p = self.table.modulus();
        let mut last_twiddle_me = u64::MAX;
        if t >= me_words {
            // Type 1: partner coefficients in a different ME.
            let stride = t / me_words;
            let total_mes = n / me_words;
            for group in 0..total_mes / (2 * stride) {
                for off in 0..stride {
                    let ra = (group * 2 * stride + off) as u64;
                    let rb = ra + stride as u64;
                    let mut ea = bank.read_me(ra);
                    let mut eb = bank.read_me(rb);
                    // All of ea lies in one block (block size 2t ≥ 2·ME):
                    // one twiddle is broadcast to every core.
                    let block = (ra as usize * me_words) / (2 * t);
                    let w = self.table.forward_twiddle(m + block);
                    self.count_twiddle_read(m + block, &mut last_twiddle_me, stats);
                    for l in 0..me_words {
                        let (x, y) = core.butterfly(ea[l], eb[l], w, p);
                        ea[l] = x;
                        eb[l] = y;
                    }
                    bank.write_me(ra, &ea);
                    bank.write_me(rb, &eb);
                }
            }
        } else {
            // Type 2: pairs within a single ME.
            for r in 0..self.config.num_mes() {
                let mut e = bank.read_me(r as u64);
                let blocks_per_me = me_words / (2 * t);
                for lb in 0..blocks_per_me {
                    let block = (r * me_words) / (2 * t) + lb;
                    let w = self.table.forward_twiddle(m + block);
                    self.count_twiddle_read(m + block, &mut last_twiddle_me, stats);
                    for j in 0..t {
                        let ia = lb * 2 * t + j;
                        let ib = ia + t;
                        let (x, y) = core.butterfly(e[ia], e[ib], w, p);
                        e[ia] = x;
                        e[ib] = y;
                    }
                }
                bank.write_me(r as u64, &e);
            }
        }
    }

    /// Simulates an inverse NTT (INTT module: same architecture, INTT
    /// cores, stages in reverse order — Section 4.2, "INTT Module").
    ///
    /// # Panics
    ///
    /// Panics if `poly.len() != n`.
    pub fn inverse(&self, poly: &[u64]) -> (Vec<u64>, NttRunStats) {
        assert_eq!(poly.len(), self.config.n, "polynomial length mismatch");
        let n = self.config.n;
        let log_n = self.config.log_n();
        let mut bank = MemoryBank::new(BankLayout::polynomial(
            n as u64,
            self.config.me_words() as u64,
        ));
        bank.load(poly);
        let mut core = InttCore::new();
        let mut stats = NttRunStats::default();

        // Stages run in reverse: m = n/2 down to 1.
        for rev in 0..log_n {
            let stage = log_n - 1 - rev; // forward-stage index being undone
            let m = 1usize << stage;
            stats.stage_kinds.push(self.config.stage_kind(stage));
            self.run_inverse_stage(stage, m, &mut bank, &mut core, &mut stats);
            stats.cycles = stats
                .cycles
                .saturating_add((n / self.config.me_words()) as u64);
        }
        stats.me_reads = bank.reads();
        stats.me_writes = bank.writes();
        stats.butterflies = core.butterflies();
        stats.latency = stats.cycles + CoreKind::Intt.pipeline_stages() + 4;
        (bank.dump(n).to_vec(), stats)
    }

    fn run_inverse_stage(
        &self,
        stage: u32,
        m: usize,
        bank: &mut MemoryBank,
        core: &mut InttCore,
        stats: &mut NttRunStats,
    ) {
        let n = self.config.n;
        let me_words = self.config.me_words();
        let t = n >> (stage + 1);
        let p = self.table.modulus();
        let mut last_twiddle_me = u64::MAX;
        if t >= me_words {
            let stride = t / me_words;
            let total_mes = n / me_words;
            for group in 0..total_mes / (2 * stride) {
                for off in 0..stride {
                    let ra = (group * 2 * stride + off) as u64;
                    let rb = ra + stride as u64;
                    let mut ea = bank.read_me(ra);
                    let mut eb = bank.read_me(rb);
                    let block = (ra as usize * me_words) / (2 * t);
                    let w = self.table.inverse_twiddle(m + block);
                    self.count_twiddle_read(m + block, &mut last_twiddle_me, stats);
                    for l in 0..me_words {
                        let (x, y) = core.butterfly(ea[l], eb[l], w, p);
                        ea[l] = x;
                        eb[l] = y;
                    }
                    bank.write_me(ra, &ea);
                    bank.write_me(rb, &eb);
                }
            }
        } else {
            for r in 0..self.config.num_mes() {
                let mut e = bank.read_me(r as u64);
                let blocks_per_me = me_words / (2 * t);
                for lb in 0..blocks_per_me {
                    let block = (r * me_words) / (2 * t) + lb;
                    let w = self.table.inverse_twiddle(m + block);
                    self.count_twiddle_read(m + block, &mut last_twiddle_me, stats);
                    for j in 0..t {
                        let ia = lb * 2 * t + j;
                        let ib = ia + t;
                        let (x, y) = core.butterfly(e[ia], e[ib], w, p);
                        e[ia] = x;
                        e[ib] = y;
                    }
                }
                bank.write_me(r as u64, &e);
            }
        }
    }

    fn count_twiddle_read(&self, twiddle_index: usize, last: &mut u64, stats: &mut NttRunStats) {
        // Twiddle factors are stored nc-wide; a new ME read happens only
        // when the index crosses into a new twiddle ME (group i-iv access
        // behavior of Section 4.2).
        let me = (twiddle_index / self.config.num_cores) as u64;
        if me != *last {
            stats.twiddle_me_reads = stats.twiddle_me_reads.saturating_add(1);
            *last = me;
        }
    }
}

/// Access-pattern address generation (Figure 2 and the Address Logic of
/// Section 4.2). These formulas describe the *pre-optimization* layout
/// with `ncNTT` coefficients per ME.
pub mod access {
    /// ME address of the coefficient group fetched at stage `i`, read
    /// cycle `j` of a Type-1 stage (paper's `Addr{ME_coeff}` formula).
    ///
    /// Note: the published formula ends in "`s·(j mod 2)`", which cannot
    /// reach the partner ME (it adds at most `s`). Deriving from the
    /// layout — ME stride between partners is `2^{s+1}` with
    /// `s = log n − log nc − 2 − i` — and checking the paper's own example
    /// (`n = 4096`, `ncNTT = 8`: `x[0]` in `ME0` pairs with `x[2048]` in
    /// `ME256`) gives the corrected formula implemented here:
    ///
    /// `addr = ((j≫1) mod 2^{s+1}) + (j ≫ (s+2)) · 2^{s+2} + (j mod 2) · 2^{s+1}`
    ///
    /// (even read cycles fetch the low ME of a pair, odd cycles its
    /// partner). Verified against the ground-truth pairing in tests.
    pub fn addr_me_coeff(i: u32, j: u64, log_n: u32, log_nc: u32) -> u64 {
        let s = (log_n - log_nc - 2 - i) as u64;
        let within = (j >> 1) & ((1u64 << (s + 1)) - 1);
        let group_base = (j >> (s + 2)) << (s + 2);
        let partner = (j & 1) << (s + 1);
        within + group_base + partner
    }

    /// Ground-truth ME pair for step `h` of Type-1 stage `i` (ME size
    /// `nc`): the `h`-th butterfly group reads MEs `(lo, lo + t/nc)`.
    pub fn ground_truth_pair(i: u32, h: u64, log_n: u32, log_nc: u32) -> (u64, u64) {
        let n = 1u64 << log_n;
        let nc = 1u64 << log_nc;
        let t = n >> (i + 1); // butterfly distance in coefficients
        let stride = t / nc; // distance in MEs
        let group = h / stride;
        let off = h % stride;
        let lo = group * 2 * stride + off;
        (lo, lo + stride)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heax_math::primes::generate_ntt_primes;
    use heax_math::word::Modulus;

    fn table(n: usize) -> NttTable {
        let p = generate_ntt_primes(45, 1, n).unwrap()[0];
        NttTable::new(n, Modulus::new(p).unwrap()).unwrap()
    }

    #[test]
    fn config_validation() {
        assert!(NttModuleConfig::new(4096, 8).is_ok());
        assert!(NttModuleConfig::new(4095, 8).is_err());
        assert!(NttModuleConfig::new(4096, 3).is_err());
        assert!(NttModuleConfig::new(16, 8).is_err()); // 4·8 > 16
        assert!(NttModuleConfig::new(64, 16).is_ok());
    }

    #[test]
    fn cycle_formula_matches_paper() {
        // Table 7 back-solves: n=4096, nc=16 → 1536 cycles; n=8192, nc=16
        // → 3328; n=16384, nc=16 → 7168.
        assert_eq!(
            NttModuleConfig::new(4096, 16).unwrap().transform_cycles(),
            1536
        );
        assert_eq!(
            NttModuleConfig::new(8192, 16).unwrap().transform_cycles(),
            3328
        );
        assert_eq!(
            NttModuleConfig::new(16384, 16).unwrap().transform_cycles(),
            7168
        );
        assert_eq!(
            NttModuleConfig::new(4096, 8).unwrap().transform_cycles(),
            3072
        );
    }

    #[test]
    fn forward_matches_software_ntt() {
        for (n, nc) in [(64usize, 4usize), (256, 8), (1024, 4), (4096, 16)] {
            let t = table(n);
            let sim = NttModuleSim::new(NttModuleConfig::new(n, nc).unwrap(), &t).unwrap();
            let p = t.modulus().value();
            let input: Vec<u64> = (0..n as u64)
                .map(|i| i.wrapping_mul(0x9e3779b97f4a7c15) % p)
                .collect();
            let mut expect = input.clone();
            t.forward(&mut expect);
            let (got, stats) = sim.forward(&input);
            assert_eq!(got, expect, "n={n} nc={nc}");
            assert_eq!(stats.cycles, sim.config().transform_cycles());
            assert_eq!(
                stats.butterflies,
                (n as u64 / 2) * n.trailing_zeros() as u64
            );
        }
    }

    #[test]
    fn inverse_matches_software_intt() {
        for (n, nc) in [(64usize, 4usize), (1024, 8), (4096, 16)] {
            let t = table(n);
            let sim = NttModuleSim::new(NttModuleConfig::new(n, nc).unwrap(), &t).unwrap();
            let p = t.modulus().value();
            let input: Vec<u64> = (0..n as u64).map(|i| (i * 31 + 7) % p).collect();
            let mut expect = input.clone();
            t.inverse(&mut expect);
            let (got, stats) = sim.inverse(&input);
            assert_eq!(got, expect, "n={n} nc={nc}");
            assert_eq!(stats.cycles, sim.config().transform_cycles());
        }
    }

    #[test]
    fn roundtrip_through_hardware() {
        let n = 512;
        let t = table(n);
        let sim = NttModuleSim::new(NttModuleConfig::new(n, 8).unwrap(), &t).unwrap();
        let p = t.modulus().value();
        let input: Vec<u64> = (0..n as u64).map(|i| (i * i) % p).collect();
        let (fwd, _) = sim.forward(&input);
        let (back, _) = sim.inverse(&fwd);
        assert_eq!(back, input);
    }

    #[test]
    fn stage_type_counts_match_paper() {
        // "first log n − log nc − 1 stages" are Type 1.
        let cfg = NttModuleConfig::new(4096, 8).unwrap();
        let t1_expected = (cfg.log_n() - cfg.log_nc() - 1) as usize;
        let t = table(4096);
        let sim = NttModuleSim::new(cfg, &t).unwrap();
        let input = vec![1u64; 4096];
        let (_, stats) = sim.forward(&input);
        let t1 = stats
            .stage_kinds
            .iter()
            .filter(|&&k| k == StageKind::Type1)
            .count();
        assert_eq!(t1, t1_expected);
        assert_eq!(stats.stage_kinds.len(), cfg.log_n() as usize);
        // INTT visits the same stage kinds in reverse.
        let (_, istats) = sim.inverse(&input);
        let mut rev = istats.stage_kinds.clone();
        rev.reverse();
        assert_eq!(rev, stats.stage_kinds);
    }

    #[test]
    fn in_place_memory_budget() {
        // All reads/writes are in place: exactly one read + one write per
        // ME per stage (Type 1 counts pairs, same total).
        let n = 1024;
        let cfg = NttModuleConfig::new(n, 8).unwrap();
        let t = table(n);
        let sim = NttModuleSim::new(cfg, &t).unwrap();
        let (_, stats) = sim.forward(&vec![0u64; n]);
        let per_stage = (n / cfg.me_words()) as u64;
        assert_eq!(stats.me_reads, per_stage * cfg.log_n() as u64);
        assert_eq!(stats.me_writes, per_stage * cfg.log_n() as u64);
    }

    #[test]
    fn basic_pipeline_is_slower() {
        // Figure 4: the optimized pipeline removes the 50 % bubble of
        // Type-1 stages.
        let cfg = NttModuleConfig::new(4096, 8).unwrap();
        assert!(cfg.transform_cycles_basic() > cfg.transform_cycles());
        let util = cfg.basic_pipeline_utilization();
        // log n = 12, T1 = 8 stages doubled: 12/(12+8) = 0.6.
        assert!((util - 0.6).abs() < 1e-9);
    }

    #[test]
    fn corrected_address_formula_matches_ground_truth() {
        // Figure 2 / Address Logic: for every Type-1 stage and step, the
        // (corrected) formula generates exactly the ground-truth ME pair.
        for (log_n, log_nc) in [(12u32, 3u32), (10, 2), (8, 3)] {
            let n = 1u64 << log_n;
            let nc = 1u64 << log_nc;
            let type1_stages = log_n - log_nc - 1;
            for i in 0..type1_stages {
                let t = n >> (i + 1);
                let steps = n / nc / 2; // butterfly groups per stage
                for h in 0..steps.min(512) {
                    let (lo, hi) = access::ground_truth_pair(i, h, log_n, log_nc);
                    let a_even = access::addr_me_coeff(i, 2 * h, log_n, log_nc);
                    let a_odd = access::addr_me_coeff(i, 2 * h + 1, log_n, log_nc);
                    assert_eq!(
                        (a_even, a_odd),
                        (lo, hi),
                        "log_n={log_n} nc={nc} stage={i} step={h} t={t}"
                    );
                }
            }
        }
    }

    #[test]
    fn papers_worked_example() {
        // n = 4096, nc = 8: first step of first stage pairs ME0 and ME256
        // (x[0] with x[2048]).
        assert_eq!(access::addr_me_coeff(0, 0, 12, 3), 0);
        assert_eq!(access::addr_me_coeff(0, 1, 12, 3), 256);
    }

    #[test]
    fn module_resources_scale_superlinearly() {
        let small = NttModuleConfig::new(8192, 8)
            .unwrap()
            .module_resources(CoreKind::Ntt);
        let large = NttModuleConfig::new(8192, 16)
            .unwrap()
            .module_resources(CoreKind::Ntt);
        // Cores double exactly; ALM grows more than 2× due to MUX trees
        // (the O(nc·log nc) term of Section 4.3).
        assert_eq!(large.dsp, 2 * small.dsp);
        assert!(large.alm > 2 * small.alm);
        // BRAM bits are per-polynomial, not per-core.
        assert!(large.bram_bits <= small.bram_bits * 2);
    }

    #[test]
    fn rejects_wide_modulus() {
        let p = generate_ntt_primes(60, 1, 64).unwrap()[0];
        let t = NttTable::new(64, Modulus::new(p).unwrap()).unwrap();
        assert!(matches!(
            NttModuleSim::new(NttModuleConfig::new(64, 4).unwrap(), &t),
            Err(HwError::ModulusTooWide { .. })
        ));
    }
}
