//! Closed-form performance model — the HEAX columns of Tables 7 and 8.
//!
//! All HEAX datapaths are statically scheduled, so throughput is exactly
//! `clock frequency / initiation-interval cycles`. The cycle counts come
//! from the dataflow simulators / Section 4 formulas:
//!
//! * NTT/INTT: `n·log n / (2·nc)` with the standalone module size of
//!   Section 6.3 (16 cores on Stratix 10, 8 on Arria 10);
//! * Dyadic: `n / ncDYD` with the 16-core MULT module;
//! * KeySwitch: the pipeline's steady interval, `k · cycles(INTT0)`;
//! * MULT+Relin: the MULT module runs concurrently with KeySwitch, so the
//!   composite rate equals the KeySwitch rate.

use heax_ckks::params::ParamSet;
use heax_hw::board::Board;
use heax_hw::cluster::{ClusterReport, RoutingPolicy};
use heax_hw::faults::FaultPlan;
use heax_hw::scheduler::{BoardOp, PipelineReport};
use heax_hw::HwError;

use crate::arch::DesignPoint;

/// The operations measured in Tables 7 and 8.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum HeaxOp {
    /// Forward NTT of one polynomial (Table 7).
    Ntt,
    /// Inverse NTT of one polynomial (Table 7).
    Intt,
    /// Dyadic multiplication of one polynomial pair (Table 7).
    Dyadic,
    /// Full key switching of one ciphertext (Table 8).
    KeySwitch,
    /// Homomorphic multiply + relinearize (Table 8).
    MultRelin,
}

impl HeaxOp {
    /// All ops, table order.
    pub const ALL: [HeaxOp; 5] = [
        HeaxOp::Ntt,
        HeaxOp::Intt,
        HeaxOp::Dyadic,
        HeaxOp::KeySwitch,
        HeaxOp::MultRelin,
    ];

    /// Table row label.
    pub fn name(self) -> &'static str {
        match self {
            HeaxOp::Ntt => "NTT",
            HeaxOp::Intt => "INTT",
            HeaxOp::Dyadic => "Dyadic",
            HeaxOp::KeySwitch => "KeySwitch",
            HeaxOp::MultRelin => "MULT+ReLin",
        }
    }
}

/// Performance estimate for one operation at one design point.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PerfEstimate {
    /// Initiation-interval cycles.
    pub cycles: u64,
    /// Steady-state throughput in operations/second.
    pub ops_per_sec: f64,
    /// Time per operation in microseconds.
    pub op_us: f64,
}

/// Computes the HEAX-side estimate for an operation at a design point.
pub fn estimate(dp: &DesignPoint, op: HeaxOp) -> PerfEstimate {
    let cycles = match op {
        HeaxOp::Ntt | HeaxOp::Intt => dp.ntt_config().transform_cycles(),
        HeaxOp::Dyadic => dp.mult_config().pair_cycles(),
        HeaxOp::KeySwitch | HeaxOp::MultRelin => dp.arch.steady_interval_cycles(),
    };
    let ops_per_sec = dp.board.cycles_to_ops_per_sec(cycles);
    PerfEstimate {
        cycles,
        ops_per_sec,
        op_us: 1e6 / ops_per_sec,
    }
}

/// Schedules a high-level op stream on the board-level pipeline of a
/// design point with `num_cores` HEAX cores — the whole-machine
/// counterpart of the per-op [`estimate`]: where `estimate` reads off
/// one module's initiation interval, this plays a mixed stream through
/// the [`heax_hw::scheduler`] with overlapped PCIe/DRAM transfers and
/// returns the full [`PipelineReport`] (utilization, FIFO high-water,
/// stall breakdown).
///
/// # Errors
///
/// Propagates configuration/stream validation from the scheduler.
pub fn estimate_stream(
    dp: &DesignPoint,
    ops: &[BoardOp],
    num_cores: usize,
) -> Result<PipelineReport, HwError> {
    dp.pipeline_config(num_cores)?.schedule_stream(ops)
}

/// Routes a high-level op stream across a modeled cluster of
/// `num_boards` boards (each with `num_cores` HEAX cores) of a design
/// point — the fleet-scale counterpart of [`estimate_stream`]: the
/// [`heax_hw::cluster`] router applies session→board key affinity (or
/// the given policy) and returns the full [`ClusterReport`] (per-board
/// utilization, routing hit/miss, replication bytes, steal counts).
///
/// # Errors
///
/// Propagates configuration/stream validation from the cluster and
/// board schedulers.
pub fn estimate_cluster(
    dp: &DesignPoint,
    ops: &[BoardOp],
    num_boards: usize,
    num_cores: usize,
    policy: RoutingPolicy,
) -> Result<ClusterReport, HwError> {
    dp.cluster_config(num_boards, num_cores)?
        .schedule_stream(ops, policy)
}

/// [`estimate_cluster`] replaying an injected
/// [`FaultPlan`] — the chaos-engineering counterpart: boards crash and
/// drain mid-run, degraded links and cores dilate, corrupted resident
/// keys are evicted and re-uploaded, and the report carries the fault
/// accounting (failovers, re-replications, recovery cycles, per-board
/// health) next to the usual routing figures. An empty plan is
/// bit-identical to [`estimate_cluster`].
///
/// # Errors
///
/// Propagates configuration/stream/plan validation from the cluster
/// and board schedulers.
pub fn estimate_cluster_faulted(
    dp: &DesignPoint,
    ops: &[BoardOp],
    num_boards: usize,
    num_cores: usize,
    policy: RoutingPolicy,
    plan: &FaultPlan,
) -> Result<ClusterReport, HwError> {
    dp.cluster_config(num_boards, num_cores)?
        .schedule_stream_faulted(ops, policy, plan)
}

/// The paper's published numbers for cross-checking (ops/second).
/// Indexed by `(board, set, op)`; `None` where the paper has no row
/// (Arria 10 was only evaluated on Set-A).
pub fn paper_heax_ops_per_sec(board: &Board, set: ParamSet, op: HeaxOp) -> Option<f64> {
    use heax_hw::board::BoardKind::*;
    use HeaxOp::*;
    use ParamSet::*;
    let v = match (board.kind(), set, op) {
        (ArriaA10, SetA, Ntt) => 89_518.0,
        (ArriaA10, SetA, Intt) => 89_518.0,
        (ArriaA10, SetA, Dyadic) => 1_074_219.0,
        (ArriaA10, SetA, KeySwitch) => 44_759.0,
        (ArriaA10, SetA, MultRelin) => 44_759.0,
        (StratixS10, SetA, Ntt) => 195_313.0,
        (StratixS10, SetA, Intt) => 195_313.0,
        (StratixS10, SetA, Dyadic) => 1_171_875.0,
        (StratixS10, SetA, KeySwitch) => 97_656.0,
        (StratixS10, SetA, MultRelin) => 97_656.0,
        (StratixS10, SetB, Ntt) => 90_144.0,
        (StratixS10, SetB, Intt) => 90_144.0,
        (StratixS10, SetB, Dyadic) => 585_938.0,
        (StratixS10, SetB, KeySwitch) => 22_536.0,
        (StratixS10, SetB, MultRelin) => 22_536.0,
        (StratixS10, SetC, Ntt) => 41_853.0,
        (StratixS10, SetC, Intt) => 41_853.0,
        (StratixS10, SetC, Dyadic) => 292_969.0,
        (StratixS10, SetC, KeySwitch) => 2_616.0,
        (StratixS10, SetC, MultRelin) => 2_616.0,
        _ => return None,
    };
    Some(v)
}

/// The paper's CPU baseline numbers (ops/second, SEAL 3.3 on a Xeon
/// Silver 4108 @ 1.8 GHz, single thread) — the "CPU" columns of Tables 7
/// and 8, used to report the paper's speed-ups next to ours.
pub fn paper_cpu_ops_per_sec(set: ParamSet, op: HeaxOp) -> f64 {
    use HeaxOp::*;
    use ParamSet::*;
    match (set, op) {
        (SetA, Ntt) => 7222.0,
        (SetA, Intt) => 7568.0,
        (SetA, Dyadic) => 36_931.0,
        (SetA, KeySwitch) => 488.0,
        (SetA, MultRelin) => 420.0,
        (SetB, Ntt) => 3437.0,
        (SetB, Intt) => 3539.0,
        (SetB, Dyadic) => 18_362.0,
        (SetB, KeySwitch) => 97.0,
        (SetB, MultRelin) => 84.0,
        (SetC, Ntt) => 1631.0,
        (SetC, Intt) => 1659.0,
        (SetC, Dyadic) => 9117.0,
        (SetC, KeySwitch) => 16.0,
        (SetC, MultRelin) => 15.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heax_ckks::params::ParamSet;

    #[test]
    fn model_matches_every_published_heax_number() {
        // The HEAX columns of Tables 7 and 8 are deterministic; the model
        // must land within rounding distance (<0.1 %) of all 20 figures.
        for dp in DesignPoint::paper_rows() {
            for op in HeaxOp::ALL {
                let got = estimate(&dp, op).ops_per_sec;
                let paper =
                    paper_heax_ops_per_sec(&dp.board, dp.set, op).expect("paper covers all rows");
                let rel = (got - paper).abs() / paper;
                assert!(
                    rel < 1e-3,
                    "{} {} {}: model {got:.1} vs paper {paper}",
                    dp.board.name(),
                    dp.set,
                    op.name()
                );
            }
        }
    }

    #[test]
    fn paper_speedups_reproduced() {
        // Headline claim: 164–268× on Stratix 10 for high-level ops.
        for set in ParamSet::ALL {
            let dp = DesignPoint::derive(heax_hw::board::Board::stratix10(), set).unwrap();
            for op in [HeaxOp::KeySwitch, HeaxOp::MultRelin] {
                let heax = estimate(&dp, op).ops_per_sec;
                let cpu = paper_cpu_ops_per_sec(set, op);
                let speedup = heax / cpu;
                assert!(
                    (160.0..275.0).contains(&speedup),
                    "{set} {}: speed-up {speedup:.1}",
                    op.name()
                );
            }
        }
    }

    #[test]
    fn arria_speedup_near_100x() {
        let dp = DesignPoint::derive(heax_hw::board::Board::arria10(), ParamSet::SetA).unwrap();
        let ks = estimate(&dp, HeaxOp::KeySwitch).ops_per_sec
            / paper_cpu_ops_per_sec(ParamSet::SetA, HeaxOp::KeySwitch);
        assert!((85.0..100.0).contains(&ks), "{ks:.1}");
        let mr = estimate(&dp, HeaxOp::MultRelin).ops_per_sec
            / paper_cpu_ops_per_sec(ParamSet::SetA, HeaxOp::MultRelin);
        assert!((100.0..115.0).contains(&mr), "{mr:.1}");
    }

    #[test]
    fn stream_estimate_consistent_with_per_op_interval() {
        // One rotation's modeled compute occupancy is exactly the
        // KeySwitch initiation interval the Table 8 estimate uses.
        let dp = DesignPoint::derive(heax_hw::board::Board::stratix10(), ParamSet::SetB).unwrap();
        let r = estimate_stream(
            &dp,
            &[BoardOp::new(heax_hw::scheduler::BoardOpKind::Rotate)],
            1,
        )
        .unwrap();
        let t = &r.ops[0];
        assert_eq!(
            t.compute.1 - t.compute.0,
            estimate(&dp, HeaxOp::KeySwitch).cycles
        );
    }

    #[test]
    fn set_c_streams_keys_from_dram_and_scales_across_cores() {
        // §5.1: only Set-C parks its keys off-chip; the derived pipeline
        // config must reflect the placement, and the modeled 4-core
        // board must clear 2x the 1-core rate on the 8-client workload.
        let board = heax_hw::board::Board::stratix10();
        assert!(
            !DesignPoint::derive(board.clone(), ParamSet::SetA)
                .unwrap()
                .pipeline_config(1)
                .unwrap()
                .ksk_in_dram
        );
        let dp = DesignPoint::derive(board, ParamSet::SetC).unwrap();
        assert!(dp.pipeline_config(1).unwrap().ksk_in_dram);
        let ops = vec![BoardOp::rotate_many(8); 8];
        let one = estimate_stream(&dp, &ops, 1).unwrap();
        let four = estimate_stream(&dp, &ops, 4).unwrap();
        assert!(four.requests_per_sec() / one.requests_per_sec() >= 2.0);
    }

    #[test]
    fn cluster_estimate_scales_and_prices_replication() {
        let dp = DesignPoint::derive(heax_hw::board::Board::stratix10(), ParamSet::SetB).unwrap();
        // Eight sessions, four hoisted groups each.
        let ops: Vec<BoardOp> = (0..32)
            .map(|i| BoardOp::rotate_many(8).with_session(1 + i % 8))
            .collect();
        let affinity = RoutingPolicy::Affinity { steal: false };
        let one = estimate_cluster(&dp, &ops, 1, 1, affinity).unwrap();
        let four = estimate_cluster(&dp, &ops, 4, 1, affinity).unwrap();
        assert!(four.requests_per_sec() > 2.0 * one.requests_per_sec());
        // One board, affinity: every session's key replicates exactly once.
        assert_eq!(one.routing_misses, 8);
        let random = estimate_cluster(&dp, &ops, 4, 1, RoutingPolicy::Random { seed: 1 }).unwrap();
        assert!(random.replication_bytes > four.replication_bytes);
    }

    #[test]
    fn faulted_cluster_estimate_degrades_gracefully() {
        use heax_hw::faults::{FaultKind, FaultPlan};
        let dp = DesignPoint::derive(heax_hw::board::Board::stratix10(), ParamSet::SetB).unwrap();
        let ops: Vec<BoardOp> = (0..32)
            .map(|i| BoardOp::rotate_many(8).with_session(1 + i % 8))
            .collect();
        let affinity = RoutingPolicy::Affinity { steal: true };
        let healthy = estimate_cluster(&dp, &ops, 4, 1, affinity).unwrap();
        // Board 0 is gone from the start: the fleet serves everything
        // on the surviving three at better than half throughput.
        let plan = FaultPlan::new().with_event(0, 0, FaultKind::BoardCrash);
        let faulted = estimate_cluster_faulted(&dp, &ops, 4, 1, affinity, &plan).unwrap();
        assert_eq!(faulted.requests(), healthy.requests());
        assert_eq!(faulted.boards_alive(), 3);
        assert!(faulted.requests_per_sec() >= 0.55 * healthy.requests_per_sec());
        // An empty plan is the fault-free schedule, bit for bit.
        let same = estimate_cluster_faulted(&dp, &ops, 4, 1, affinity, &FaultPlan::none()).unwrap();
        assert_eq!(same.total_cycles, healthy.total_cycles);
        assert_eq!(same.assignment, healthy.assignment);
    }

    #[test]
    fn op_us_consistent() {
        let dp = DesignPoint::derive(heax_hw::board::Board::stratix10(), ParamSet::SetC).unwrap();
        let e = estimate(&dp, HeaxOp::KeySwitch);
        // §5.1 quotes ≈383 µs per Set-C KeySwitch.
        assert!((e.op_us - 382.0).abs() < 2.0, "{}", e.op_us);
    }
}
