//! System view (Section 5, Figure 7): host CPU ↔ FPGA board with PCIe
//! transfers, DRAM-resident results, and a memory map.
//!
//! Applications on the host sequence and batch operations; polynomials
//! cross PCIe with multi-threaded DMA; results can stay in board DRAM
//! (tracked by a host-side memory map) for reuse without another PCIe
//! round trip.

use std::collections::HashMap;

use heax_ckks::ciphertext::Ciphertext;
use heax_hw::xfer::{DramModel, PcieModel, WORD_BYTES};

use crate::accel::{HeaxAccelerator, OpReport};
use crate::CoreError;

/// Where an operand lives from the host's perspective.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OperandLocation {
    /// On the host; must cross PCIe.
    Host,
    /// Already in board DRAM (memory-mapped result of a previous op).
    BoardDram,
}

/// Timing summary of one batched run.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SystemReport {
    /// Number of operations executed.
    pub ops: usize,
    /// Pure compute time (steady-state, µs).
    pub compute_us: f64,
    /// PCIe transfer time (µs).
    pub pcie_us: f64,
    /// Wall time with compute/transfer overlap (double buffering), µs.
    pub total_us: f64,
    /// Effective throughput, operations/second.
    pub ops_per_sec: f64,
}

/// The host+board system: an accelerator plus transfer models and a
/// DRAM-resident ciphertext store.
#[derive(Debug)]
pub struct HeaxSystem<'a> {
    accel: HeaxAccelerator<'a>,
    pcie: PcieModel,
    dram: DramModel,
    memory_map: HashMap<String, Ciphertext>,
    dram_used_bytes: u64,
}

impl<'a> HeaxSystem<'a> {
    /// Builds the system around an accelerator.
    pub fn new(accel: HeaxAccelerator<'a>) -> Self {
        let pcie = PcieModel::for_board(accel.board());
        let dram = DramModel::for_board(accel.board());
        Self {
            accel,
            pcie,
            dram,
            memory_map: HashMap::new(),
            dram_used_bytes: 0,
        }
    }

    /// The underlying accelerator.
    pub fn accelerator(&self) -> &HeaxAccelerator<'a> {
        &self.accel
    }

    /// The DRAM model in use.
    pub fn dram(&self) -> &DramModel {
        &self.dram
    }

    /// DRAM footprint of one parked ciphertext.
    fn ct_bytes(ct: &Ciphertext) -> u64 {
        ct.components()
            .iter()
            .map(|p| p.data().len() as u64 * WORD_BYTES)
            .sum()
    }

    /// Stores a result in board DRAM under a host-side name (the "Memory
    /// Map" of Figure 7). Overwriting an existing name releases the old
    /// entry's bytes first, so repeated parking under one handle (the
    /// batch-scheduler intermediate pattern) cannot leak modeled DRAM.
    ///
    /// # Errors
    ///
    /// [`CoreError::DramFull`] if board DRAM capacity would be exceeded.
    pub fn store(&mut self, name: &str, ct: Ciphertext) -> Result<(), CoreError> {
        let bytes = Self::ct_bytes(&ct);
        let replaced = self.memory_map.get(name).map(Self::ct_bytes).unwrap_or(0);
        let capacity = self.dram_capacity_bytes();
        let used_after_evict = self.dram_used_bytes - replaced;
        if used_after_evict + bytes > capacity {
            return Err(CoreError::DramFull {
                requested: bytes,
                available: capacity - used_after_evict,
            });
        }
        self.dram_used_bytes = used_after_evict + bytes;
        self.memory_map.insert(name.to_string(), ct);
        Ok(())
    }

    /// Fetches a DRAM-resident ciphertext by name.
    pub fn load(&self, name: &str) -> Option<&Ciphertext> {
        self.memory_map.get(name)
    }

    /// Unparks a DRAM-resident ciphertext: removes the entry and releases
    /// its modeled DRAM bytes. Returns `None` if the name is unknown.
    pub fn remove(&mut self, name: &str) -> Option<Ciphertext> {
        let ct = self.memory_map.remove(name)?;
        self.dram_used_bytes -= Self::ct_bytes(&ct);
        Some(ct)
    }

    /// Whether a name is currently parked.
    pub fn contains(&self, name: &str) -> bool {
        self.memory_map.contains_key(name)
    }

    /// Number of memory-mapped entries.
    pub fn mapped_entries(&self) -> usize {
        self.memory_map.len()
    }

    /// DRAM bytes in use by mapped results.
    pub fn dram_used_bytes(&self) -> u64 {
        self.dram_used_bytes
    }

    /// Modeled board DRAM capacity in bytes — the budget everything
    /// DRAM-resident (parked results, cached session keys) is billed
    /// against.
    pub fn dram_capacity_bytes(&self) -> u64 {
        self.accel.board().dram_gib() as u64 * (1 << 30)
    }

    /// Modeled DRAM bytes still free for parked results. Transport
    /// layers size their session-key caches from this budget (see
    /// `heax_server::net`).
    pub fn dram_available_bytes(&self) -> u64 {
        self.dram_capacity_bytes()
            .saturating_sub(self.dram_used_bytes)
    }

    /// Models a batch of identical operations whose per-op report is
    /// `rep`, with operands coming from `loc`: PCIe transfers overlap
    /// compute via double/quadruple buffering (Section 5.2), so wall time
    /// is the max of the two streams plus one fill.
    pub fn batch(&self, rep: &OpReport, count: usize, loc: OperandLocation) -> SystemReport {
        let per_op_pcie = match loc {
            OperandLocation::Host => {
                // One DMA request per polynomial-sized block, 8 threads.
                let words = rep.input_words + rep.output_words;
                let requests = (words / self.accel.context().n() as u64).max(1);
                self.pcie.transfer_us(words, requests)
            }
            OperandLocation::BoardDram => 0.0,
        };
        let compute_us = rep.interval_us * count as f64;
        let pcie_us = per_op_pcie * count as f64;
        let fill_us = rep.latency_cycles as f64 / self.accel.board().freq_hz() * 1e6;
        let total_us = compute_us.max(pcie_us) + fill_us + per_op_pcie;
        SystemReport {
            ops: count,
            compute_us,
            pcie_us,
            total_us,
            ops_per_sec: count as f64 / total_us * 1e6,
        }
    }

    /// Whether the configuration is compute-bound (PCIe keeps up) for the
    /// given per-op report.
    pub fn is_compute_bound(&self, rep: &OpReport) -> bool {
        let r = self.batch(rep, 1024, OperandLocation::Host);
        r.compute_us >= r.pcie_us
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accel::HeaxAccelerator;
    use heax_ckks::{CkksContext, CkksEncoder, CkksParams, Encryptor, PublicKey, SecretKey};
    use heax_hw::board::Board;
    use heax_hw::keyswitch_pipeline::KeySwitchArch;
    use heax_hw::mult_dataflow::MultModuleConfig;
    use heax_hw::ntt_dataflow::NttModuleConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ctx() -> CkksContext {
        let chain = heax_math::primes::generate_prime_chain(&[40, 40, 40, 41], 64).unwrap();
        CkksContext::new(CkksParams::new(64, chain, (1u64 << 32) as f64).unwrap()).unwrap()
    }

    fn accel(ctx: &CkksContext) -> HeaxAccelerator<'_> {
        HeaxAccelerator::with_arch(
            ctx,
            Board::stratix10(),
            KeySwitchArch {
                n: 64,
                k: 3,
                nc_intt0: 4,
                m0: 2,
                nc_ntt0: 4,
                num_dyad: 3,
                nc_dyad: 4,
                nc_intt1: 2,
                nc_ntt1: 4,
                nc_ms: 2,
            },
            NttModuleConfig::new(64, 4).unwrap(),
            MultModuleConfig::new(64, 8).unwrap(),
        )
        .unwrap()
    }

    fn sample_ct(ctx: &CkksContext) -> Ciphertext {
        let mut rng = StdRng::seed_from_u64(60);
        let sk = SecretKey::generate(ctx, &mut rng);
        let pk = PublicKey::generate(ctx, &sk, &mut rng);
        let enc = CkksEncoder::new(ctx);
        let pt = enc
            .encode_real(&[1.0], ctx.params().scale(), ctx.max_level())
            .unwrap();
        Encryptor::new(ctx, &pk).encrypt(&pt, &mut rng).unwrap()
    }

    #[test]
    fn memory_map_store_load() {
        let c = ctx();
        let mut sys = HeaxSystem::new(accel(&c));
        let ct = sample_ct(&c);
        sys.store("result0", ct.clone()).unwrap();
        assert_eq!(sys.mapped_entries(), 1);
        assert_eq!(sys.load("result0").unwrap(), &ct);
        assert!(sys.load("missing").is_none());
        assert!(sys.dram_used_bytes() > 0);
    }

    #[test]
    fn overwrite_and_remove_keep_dram_accounting_exact() {
        let c = ctx();
        let mut sys = HeaxSystem::new(accel(&c));
        let ct = sample_ct(&c);
        sys.store("x", ct.clone()).unwrap();
        let one = sys.dram_used_bytes();
        // Overwriting the same name must not double-count.
        sys.store("x", ct.clone()).unwrap();
        assert_eq!(sys.dram_used_bytes(), one);
        assert_eq!(sys.mapped_entries(), 1);
        assert!(sys.contains("x"));
        // Unparking returns the ciphertext and releases its bytes.
        let back = sys.remove("x").expect("parked");
        assert_eq!(back, ct);
        assert_eq!(sys.dram_used_bytes(), 0);
        assert_eq!(sys.mapped_entries(), 0);
        assert!(!sys.contains("x"));
        assert!(sys.remove("x").is_none());
    }

    #[test]
    fn batch_overlaps_compute_and_transfer() {
        let c = ctx();
        let a = accel(&c);
        let ct = sample_ct(&c);
        let (_, rep) = a.dyadic_mult(&ct, &ct).unwrap();
        let sys = HeaxSystem::new(accel(&c));
        let host = sys.batch(&rep, 100, OperandLocation::Host);
        let dram = sys.batch(&rep, 100, OperandLocation::BoardDram);
        assert!(host.total_us >= dram.total_us);
        assert!(dram.pcie_us == 0.0);
        assert!(
            host.total_us < host.compute_us + host.pcie_us + 1e3,
            "overlap must beat serial execution"
        );
        assert!(host.ops_per_sec > 0.0);
    }

    #[test]
    fn dram_budget_hooks_are_consistent() {
        let c = ctx();
        let mut sys = HeaxSystem::new(accel(&c));
        let capacity = sys.dram_capacity_bytes();
        assert!(capacity > 0);
        assert_eq!(sys.dram_available_bytes(), capacity);
        let ct = sample_ct(&c);
        sys.store("x", ct).unwrap();
        assert_eq!(sys.dram_available_bytes(), capacity - sys.dram_used_bytes());
        sys.remove("x").unwrap();
        assert_eq!(sys.dram_available_bytes(), capacity);
    }

    #[test]
    fn dram_capacity_enforced() {
        let c = ctx();
        let mut sys = HeaxSystem::new(accel(&c));
        // Fake exhaustion by storing until the tiny test ciphertexts would
        // exceed a forced cap — instead check the arithmetic directly.
        let ct = sample_ct(&c);
        for i in 0..10 {
            sys.store(&format!("ct{i}"), ct.clone()).unwrap();
        }
        assert_eq!(sys.mapped_entries(), 10);
    }
}
