//! Automatic derivation of the KeySwitch architecture parameters
//! (Section 4.3, "Balancing Throughput"; Table 5).
//!
//! HEAX's selling point is that the same design instantiates at different
//! scales "with no manual tuning": given a board and an HE parameter set,
//! the module mix is fixed by throughput-balancing equations plus a
//! fit-to-budget search. This module reproduces all four Table 5 rows from
//! those rules alone:
//!
//! 1. `ncINTT0` — the largest power of two such that the complete design
//!    (KeySwitch + MULT + shell) fits the board's resource budget;
//! 2. `m0 = min(k, 4)` first-layer NTT modules (more than 32 cores per
//!    module fails place-and-route; more than ~4 modules stops paying off
//!    in BRAM), `ncNTT0 = k·ncINTT0/m0`;
//! 3. `ncDYD = next_pow2(⌈4·ncNTT0/log n⌉)`, one DyadMult module per NTT0
//!    module plus one for the input polynomial;
//! 4. `ncINTT1 = ncINTT0/k`, `ncNTT1 = ncINTT0`;
//! 5. `ncMS = next_pow2(⌈2·ncNTT0/log n⌉)` — note: the paper's prose says
//!    `2·ncNTT1/log n`, but only the `ncNTT0` variant reproduces *all four*
//!    Table 5 rows (the prose formula gives `Mult(2)` for Set-C where the
//!    table has `Mult(4)`); we use the variant consistent with the table.

use heax_ckks::params::ParamSet;
use heax_hw::board::{Board, BoardKind};
use heax_hw::cores::CoreKind;
use heax_hw::keyswitch_pipeline::KeySwitchArch;
use heax_hw::mult_dataflow::MultModuleConfig;
use heax_hw::ntt_dataflow::NttModuleConfig;
use heax_hw::resources::Resources;
use heax_hw::scheduler::PipelineConfig;
use heax_hw::HwError;

use crate::resources::{design_resources, KskPlacement};

/// Rounds up to the next power of two.
pub(crate) fn next_pow2(x: u64) -> u64 {
    x.next_power_of_two()
}

/// Derives the full KeySwitch architecture for `(board, set)` by the
/// balancing equations, trying `ncINTT0 ∈ {32, 16, 8, 4, 2, 1}` in
/// descending order and returning the first complete design that fits the
/// board (the "automatic instantiation" of Section 6.3).
///
/// # Errors
///
/// Returns [`HwError::ResourceOverflow`] if no size fits (cannot happen
/// for the paper's boards and sets).
pub fn derive_arch(board: &Board, set: ParamSet) -> Result<KeySwitchArch, HwError> {
    let n = set.n();
    let k = set.k();
    for log_nc in (0..=5u32).rev() {
        let nc_intt0 = 1usize << log_nc;
        if nc_intt0 > k * 16 {
            // NTT0 modules would exceed 32 cores even at m0 = min(k,4).
        }
        let arch = arch_for_intt0(n, k, nc_intt0);
        if arch.validate().is_err() {
            continue;
        }
        // Fit check: full design = shell + KeySwitch + standalone MULT.
        let placement = KskPlacement::choose(board, &arch);
        let total = design_resources(board, &arch, placement);
        if total.fits_within(board.budget()) {
            return Ok(arch);
        }
    }
    Err(HwError::ResourceOverflow {
        resource: "ALM",
        required: 0,
        available: board.budget().alm,
    })
}

/// The balancing equations for a given `ncINTT0` (no fit check).
pub fn arch_for_intt0(n: usize, k: usize, nc_intt0: usize) -> KeySwitchArch {
    let log_n = n.trailing_zeros() as u64;
    let m0 = k.min(4);
    let nc_ntt0 = (k * nc_intt0 / m0).max(1);
    let nc_dyad = next_pow2((4 * nc_ntt0 as u64).div_ceil(log_n)) as usize;
    let nc_intt1 = (nc_intt0 / k).max(1);
    let nc_ntt1 = nc_intt0;
    let nc_ms = next_pow2((2 * nc_ntt0 as u64).div_ceil(log_n)) as usize;
    KeySwitchArch {
        n,
        k,
        nc_intt0,
        m0,
        nc_ntt0,
        num_dyad: m0 + 1,
        nc_dyad,
        nc_intt1,
        nc_ntt1,
        nc_ms,
    }
}

/// Core count of the standalone MULT module instantiated next to
/// KeySwitch (Section 6.3: 16-core MULT on both boards).
pub fn standalone_mult_cores(_board: &Board) -> usize {
    16
}

/// Core count of the NTT/INTT modules used for standalone NTT requests
/// (Section 6.3: the KeySwitch-internal modules serve them — 16-core on
/// Stratix 10, 8-core on Arria 10).
pub fn standalone_ntt_cores(board: &Board) -> usize {
    match board.kind() {
        BoardKind::ArriaA10 => 8,
        BoardKind::StratixS10 => 16,
    }
}

/// A fully instantiated design point: board + parameter set + derived
/// architecture (one Table 5/6/7/8 row).
#[derive(Clone, Debug)]
pub struct DesignPoint {
    /// Target board.
    pub board: Board,
    /// HE parameter set.
    pub set: ParamSet,
    /// Derived KeySwitch architecture.
    pub arch: KeySwitchArch,
    /// Where key-switching keys live.
    pub ksk_placement: KskPlacement,
}

impl DesignPoint {
    /// Derives the design point for `(board, set)`.
    ///
    /// # Errors
    ///
    /// Propagates [`derive_arch`] failures.
    pub fn derive(board: Board, set: ParamSet) -> Result<Self, HwError> {
        let arch = derive_arch(&board, set)?;
        let ksk_placement = KskPlacement::choose(&board, &arch);
        Ok(Self {
            board,
            set,
            arch,
            ksk_placement,
        })
    }

    /// The four design points evaluated in the paper (Table 5 rows).
    ///
    /// # Panics
    ///
    /// Panics if derivation fails (cannot happen for these points).
    pub fn paper_rows() -> Vec<DesignPoint> {
        vec![
            DesignPoint::derive(Board::arria10(), ParamSet::SetA).expect("fits"),
            DesignPoint::derive(Board::stratix10(), ParamSet::SetA).expect("fits"),
            DesignPoint::derive(Board::stratix10(), ParamSet::SetB).expect("fits"),
            DesignPoint::derive(Board::stratix10(), ParamSet::SetC).expect("fits"),
        ]
    }

    /// Total resource usage of the design.
    pub fn resources(&self) -> Resources {
        design_resources(&self.board, &self.arch, self.ksk_placement)
    }

    /// Standalone-NTT module configuration (for Table 7).
    ///
    /// # Panics
    ///
    /// Never panics for valid design points.
    pub fn ntt_config(&self) -> NttModuleConfig {
        NttModuleConfig::new(self.set.n(), standalone_ntt_cores(&self.board))
            .expect("valid by construction")
    }

    /// Standalone-MULT module configuration (for Table 7).
    ///
    /// # Panics
    ///
    /// Never panics for valid design points.
    pub fn mult_config(&self) -> MultModuleConfig {
        MultModuleConfig::new(self.set.n(), standalone_mult_cores(&self.board))
            .expect("valid by construction")
    }

    /// Board-level pipeline configuration for this design point with
    /// `num_cores` HEAX cores: key-switching keys stream from DRAM
    /// exactly when [`KskPlacement::choose`] placed them off-chip
    /// (Set-C), mirroring §5.1.
    ///
    /// # Errors
    ///
    /// Propagates [`PipelineConfig::new`] validation.
    pub fn pipeline_config(&self, num_cores: usize) -> Result<PipelineConfig, HwError> {
        Ok(
            PipelineConfig::new(&self.board, self.arch, self.mult_config(), num_cores)?
                .with_ksk_in_dram(matches!(self.ksk_placement, KskPlacement::OffChipDram)),
        )
    }

    /// Cluster configuration for this design point: `num_boards`
    /// replicas of the [`DesignPoint::pipeline_config`] board, behind
    /// the [`heax_hw::cluster`] session-affinity router.
    ///
    /// # Errors
    ///
    /// Propagates [`PipelineConfig::new`] and
    /// [`heax_hw::cluster::ClusterConfig::new`] validation.
    pub fn cluster_config(
        &self,
        num_boards: usize,
        num_cores: usize,
    ) -> Result<heax_hw::cluster::ClusterConfig, HwError> {
        heax_hw::cluster::ClusterConfig::new(self.pipeline_config(num_cores)?, num_boards)
    }

    /// Logic resources of one core type across the whole KeySwitch module
    /// (diagnostic).
    pub fn core_count(&self, kind: CoreKind) -> usize {
        let a = &self.arch;
        match kind {
            CoreKind::Intt => a.nc_intt0 + 2 * a.nc_intt1,
            CoreKind::Ntt => a.m0 * a.nc_ntt0 + 2 * a.nc_ntt1,
            CoreKind::Dyadic => a.num_dyad * a.nc_dyad + 2 * a.nc_ms,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table5_row_arria_set_a() {
        let a = derive_arch(&Board::arria10(), ParamSet::SetA).unwrap();
        assert_eq!(
            a.summary(),
            "1xINTT(8) -> 2xNTT(8) -> 3xDyad(4) -> 2xINTT(4) -> 2xNTT(8) -> 2xMult(2)"
        );
    }

    #[test]
    fn table5_row_stratix_set_a() {
        let a = derive_arch(&Board::stratix10(), ParamSet::SetA).unwrap();
        assert_eq!(
            a.summary(),
            "1xINTT(16) -> 2xNTT(16) -> 3xDyad(8) -> 2xINTT(8) -> 2xNTT(16) -> 2xMult(4)"
        );
    }

    #[test]
    fn table5_row_stratix_set_b() {
        let a = derive_arch(&Board::stratix10(), ParamSet::SetB).unwrap();
        assert_eq!(
            a.summary(),
            "1xINTT(16) -> 4xNTT(16) -> 5xDyad(8) -> 2xINTT(4) -> 2xNTT(16) -> 2xMult(4)"
        );
    }

    #[test]
    fn table5_row_stratix_set_c() {
        let a = derive_arch(&Board::stratix10(), ParamSet::SetC).unwrap();
        assert_eq!(
            a.summary(),
            "1xINTT(8) -> 4xNTT(16) -> 5xDyad(8) -> 2xINTT(1) -> 2xNTT(8) -> 2xMult(4)"
        );
    }

    #[test]
    fn all_paper_rows_fit_their_boards() {
        for dp in DesignPoint::paper_rows() {
            let r = dp.resources();
            assert!(
                r.fits_within(dp.board.budget()),
                "{} {} does not fit: {r}",
                dp.board.name(),
                dp.set
            );
        }
    }

    #[test]
    fn stratix_set_a_doubles_arria_throughput_cores() {
        // Section 6.3 "Scalability": the Stratix instantiation has ~2× the
        // cores of the Arria one for the same parameter set.
        let a = derive_arch(&Board::arria10(), ParamSet::SetA).unwrap();
        let s = derive_arch(&Board::stratix10(), ParamSet::SetA).unwrap();
        assert_eq!(s.nc_intt0, 2 * a.nc_intt0);
        assert_eq!(s.nc_ntt0, 2 * a.nc_ntt0);
        assert_eq!(s.nc_dyad, 2 * a.nc_dyad);
    }

    #[test]
    fn dyad_throughput_inequality_holds() {
        // 2n/ncDYD ≤ n·log n/(2·ncNTT0) for every derived row.
        for dp in DesignPoint::paper_rows() {
            let a = &dp.arch;
            assert!(
                a.dyad_cycles() <= a.ntt0_cycles(),
                "{}: dyad {} > ntt0 {}",
                a.summary(),
                a.dyad_cycles(),
                a.ntt0_cycles()
            );
        }
    }

    #[test]
    fn core_counts_positive() {
        let dp = DesignPoint::derive(Board::stratix10(), ParamSet::SetB).unwrap();
        for kind in CoreKind::ALL {
            assert!(dp.core_count(kind) > 0);
        }
        assert!(dp.ntt_config().num_cores == 16);
        assert!(dp.mult_config().num_cores == 16);
    }
}
