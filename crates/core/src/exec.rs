//! Execution backends for the accelerator layer.
//!
//! The implementation lives in [`heax_math::exec`] (the lowest layer, so
//! that `RnsPoly` and the NTT kernels can dispatch over it); this module
//! re-exports it as the accelerator-facing API. [`HeaxAccelerator`]
//! mirrors the hardware's limb-level concurrency — NTT cores and
//! key-switch lanes running one RNS residue each — on whichever backend
//! is selected:
//!
//! * [`Sequential`] — the deterministic default;
//! * [`ThreadPool`] — a hand-rolled scoped `std::thread` pool; pick lane
//!   counts via [`with_threads`] or the `HEAX_THREADS` environment
//!   variable (consulted once by [`global`]).
//!
//! Backends are bit-identical by construction; the equivalence property
//! suites in `crates/math/tests` and `crates/ckks/tests` enforce it.
//!
//! [`HeaxAccelerator`]: crate::accel::HeaxAccelerator

pub use heax_math::exec::{
    env_threads, for_each_limb, for_each_limb2, for_each_mut, global, with_threads, Executor,
    Sequential, ThreadPool,
};
