//! Full-design resource accounting (Tables 4 and 6).
//!
//! DSP counts follow exactly from core counts (Table 3 × module sizes) —
//! the model reproduces the paper's Table 6 DSP column to within 2.5 %
//! (three of four rows exactly). REG/ALM include per-module infrastructure
//! (address logic, customized MUX trees, rate converters) that cannot be
//! derived from first principles; for those we use the paper's *measured*
//! per-module costs (Table 4) as calibration points at 4/8/16/32 cores and
//! extrapolate outside that range. BRAM is modeled from the bank inventory
//! of Figures 3 and 5 with the Section 4.2 word-packing rules.

use heax_hw::board::{Board, BoardKind};
use heax_hw::bram::BankLayout;
use heax_hw::cores::CoreKind;
use heax_hw::keyswitch_pipeline::KeySwitchArch;
use heax_hw::resources::Resources;

/// Shell (PCIe/DRAM/control infrastructure) cost per board — Table 4,
/// "A10 Shell" / "S10 Shell" rows.
pub fn shell_resources(board: &Board) -> Resources {
    match board.kind() {
        BoardKind::ArriaA10 => Resources {
            dsp: 1,
            reg: 79_203,
            alm: 39_222,
            bram_bits: 886_496,
            m20k: 144,
        },
        BoardKind::StratixS10 => Resources {
            dsp: 2,
            reg: 86_984,
            alm: 45_612,
            bram_bits: 1_201_096,
            m20k: 173,
        },
    }
}

/// Basic module kinds of Table 4.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ModuleKind {
    /// MULT / DyadMult / MS module (dyadic cores).
    Mult,
    /// Forward-NTT module.
    Ntt,
    /// Inverse-NTT module.
    Intt,
}

impl ModuleKind {
    /// The core type inside this module.
    pub fn core(self) -> CoreKind {
        match self {
            ModuleKind::Mult => CoreKind::Dyadic,
            ModuleKind::Ntt => CoreKind::Ntt,
            ModuleKind::Intt => CoreKind::Intt,
        }
    }

    /// Table 4 measured `(cores, reg, alm, m20k)` calibration rows
    /// (BRAM figures at n = 2¹³).
    fn calibration(self) -> [(u64, u64, u64, u64); 4] {
        match self {
            ModuleKind::Mult => [
                (4, 42_817, 15_795, 65),
                (8, 61_878, 22_160, 65),
                (16, 93_594, 35_257, 164),
                (32, 181_503, 62_157, 293),
            ],
            ModuleKind::Ntt => [
                (4, 61_670, 22_316, 86),
                (8, 96_919, 36_336, 185),
                (16, 196_205, 67_865, 380),
                (32, 387_357, 142_300, 725),
            ],
            ModuleKind::Intt => [
                (4, 63_917, 22_700, 86),
                (8, 104_575, 37_331, 185),
                (16, 182_478, 68_645, 380),
                (32, 384_267, 144_957, 724),
            ],
        }
    }

    /// Table 4 BRAM bits per module at n = 2¹³ (independent of cores).
    fn calibration_bits(self) -> u64 {
        match self {
            ModuleKind::Mult => 1_104_384,
            ModuleKind::Ntt | ModuleKind::Intt => 1_514_496,
        }
    }
}

/// Resource cost of one basic module with `cores` cores at ring degree
/// `n`, calibrated against Table 4.
///
/// * DSP: exactly `cores × core_dsp` (Table 3).
/// * REG/ALM: Table 4 values at 4/8/16/32 cores; below 4 cores the 4-core
///   module overhead is kept and the per-core share removed; above 32 the
///   32-core row is scaled by the core ratio.
/// * BRAM: Table 4 figures scaled by `n / 2¹³` (module memories hold a
///   fixed number of polynomial-sized banks).
pub fn module_cost(kind: ModuleKind, cores: usize, n: usize) -> Resources {
    let core = kind.core().cost();
    let cal = kind.calibration();
    let cores_u = cores as u64;

    let (reg, alm, m20k_base) = match cal.iter().find(|(c, ..)| *c == cores_u) {
        Some(&(_, reg, alm, m20k)) => (reg, alm, m20k),
        None if cores_u < 4 => {
            // Keep the 4-core infrastructure, shed the per-core share.
            let (_, reg4, alm4, m20k4) = cal[0];
            (
                reg4 - (4 - cores_u) * core.reg,
                alm4 - (4 - cores_u) * core.alm,
                m20k4,
            )
        }
        None => {
            // Scale the 32-core row by the core ratio (super-linear MUX
            // growth ignored above the calibrated range; not used by any
            // paper configuration).
            let (c32, reg32, alm32, m20k32) = cal[3];
            (
                reg32 * cores_u / c32,
                alm32 * cores_u / c32,
                m20k32 * cores_u / c32,
            )
        }
    };

    let scale_n = |v: u64| (v * n as u64).div_ceil(8192);
    Resources {
        dsp: cores_u * core.dsp,
        reg,
        alm,
        bram_bits: scale_n(kind.calibration_bits()),
        m20k: scale_n(m20k_base),
    }
}

/// Where key-switching keys are stored (Section 5.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KskPlacement {
    /// Keys fit in on-chip BRAM (Set-A, Set-B).
    OnChipBram,
    /// Keys are striped across DRAM channels and streamed per operation
    /// (Set-C: BRAM cannot hold the O(n·k²) keys).
    OffChipDram,
}

impl KskPlacement {
    /// Chooses the placement: on-chip iff the whole design *including* the
    /// keys fits the board's BRAM.
    pub fn choose(board: &Board, arch: &KeySwitchArch) -> Self {
        let base = base_design_resources(board, arch);
        let with_keys = base + ksk_bram(arch.n, arch.k);
        if with_keys.fits_within(board.budget()) {
            KskPlacement::OnChipBram
        } else {
            KskPlacement::OffChipDram
        }
    }
}

/// BRAM cost of holding one set of key-switching keys on chip:
/// `2·k·(k+1)` polynomials of `n` 54-bit words, word-packed.
pub fn ksk_bram(n: usize, k: usize) -> Resources {
    let k = k as u64;
    let polys = 2 * k * (k + 1);
    let bank = BankLayout::polynomial(n as u64, 8);
    bank.resources() * polys
}

/// Resource inventory of the KeySwitch module (Figure 5): all submodules
/// plus the f1 input buffers and the two accumulator bank sets.
pub fn keyswitch_resources(arch: &KeySwitchArch) -> Resources {
    let n = arch.n;
    let mut total = Resources::ZERO;
    // First layer.
    total += module_cost(ModuleKind::Intt, arch.nc_intt0, n);
    total += module_cost(ModuleKind::Ntt, arch.nc_ntt0, n) * arch.m0 as u64;
    total += module_cost(ModuleKind::Mult, arch.nc_dyad, n) * arch.num_dyad as u64;
    // Second layer (modulus switching).
    total += module_cost(ModuleKind::Intt, arch.nc_intt1, n) * 2;
    total += module_cost(ModuleKind::Ntt, arch.nc_ntt1, n) * 2;
    total += module_cost(ModuleKind::Mult, arch.nc_ms, n) * 2;
    // Input-polynomial buffering: f1 polynomial copies (Data Dependency 1 /
    // quadruple buffering of Section 5.2).
    let input_bank = BankLayout::polynomial(n as u64, (2 * arch.nc_intt0) as u64);
    total += input_bank.resources() * arch.f1();
    // Accumulator banks: two sets of k+1 residue polynomials, plus f2
    // rotation buffers shared between them (Data Dependency 2).
    let acc_bank = BankLayout::polynomial(n as u64, arch.nc_dyad as u64);
    let acc_polys = 2 * (arch.k as u64 + 1) + arch.f2();
    total += acc_bank.resources() * acc_polys;
    total
}

/// Resources of the complete design *excluding* ksk storage:
/// shell + KeySwitch + standalone 16-core MULT module.
pub fn base_design_resources(board: &Board, arch: &KeySwitchArch) -> Resources {
    shell_resources(board)
        + keyswitch_resources(arch)
        + module_cost(
            ModuleKind::Mult,
            crate::arch::standalone_mult_cores(board),
            arch.n,
        )
}

/// Resources of the complete design with the chosen ksk placement
/// (the Table 6 row).
pub fn design_resources(board: &Board, arch: &KeySwitchArch, placement: KskPlacement) -> Resources {
    let base = base_design_resources(board, arch);
    match placement {
        KskPlacement::OnChipBram => base + ksk_bram(arch.n, arch.k),
        KskPlacement::OffChipDram => base,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::derive_arch;
    use heax_ckks::params::ParamSet;

    #[test]
    fn dsp_column_matches_table6() {
        // Table 6 DSP: Arria/Set-A 1185, Stratix/Set-A 2018, Set-B 2610.
        let a10 = Board::arria10();
        let s10 = Board::stratix10();
        let cases = [
            (&a10, ParamSet::SetA, 1185u64),
            (&s10, ParamSet::SetA, 2018),
            (&s10, ParamSet::SetB, 2610),
        ];
        for (board, set, expected) in cases {
            let arch = derive_arch(board, set).unwrap();
            let placement = KskPlacement::choose(board, &arch);
            let r = design_resources(board, &arch, placement);
            assert_eq!(r.dsp, expected, "{} {}", board.name(), set);
        }
        // Set-C: paper reports 2370; our Table 5-faithful INTT(1) second
        // layer gives 2310 (the paper's Tables 5 and 6 disagree by six
        // 10-DSP cores here — documented in EXPERIMENTS.md).
        let arch = derive_arch(&s10, ParamSet::SetC).unwrap();
        let placement = KskPlacement::choose(&s10, &arch);
        let r = design_resources(&s10, &arch, placement);
        assert_eq!(r.dsp, 2310);
    }

    #[test]
    fn reg_alm_within_ten_percent_of_table6() {
        let s10 = Board::stratix10();
        let cases = [
            (ParamSet::SetA, 1_554_005u64, 582_148u64),
            (ParamSet::SetB, 1_976_162, 698_884),
            (ParamSet::SetC, 1_746_384, 599_715),
        ];
        for (set, paper_reg, paper_alm) in cases {
            let arch = derive_arch(&s10, set).unwrap();
            let placement = KskPlacement::choose(&s10, &arch);
            let r = design_resources(&s10, &arch, placement);
            let reg_err = (r.reg as f64 - paper_reg as f64).abs() / paper_reg as f64;
            let alm_err = (r.alm as f64 - paper_alm as f64).abs() / paper_alm as f64;
            assert!(reg_err < 0.10, "{set}: REG {} vs paper {paper_reg}", r.reg);
            assert!(alm_err < 0.10, "{set}: ALM {} vs paper {paper_alm}", r.alm);
        }
    }

    #[test]
    fn ksk_placement_matches_section_5_1() {
        // Sets A and B fit on chip; Set-C must spill keys to DRAM.
        let s10 = Board::stratix10();
        for (set, expected) in [
            (ParamSet::SetA, KskPlacement::OnChipBram),
            (ParamSet::SetB, KskPlacement::OnChipBram),
            (ParamSet::SetC, KskPlacement::OffChipDram),
        ] {
            let arch = derive_arch(&s10, set).unwrap();
            assert_eq!(KskPlacement::choose(&s10, &arch), expected, "{set}");
        }
        // Arria 10 / Set-A also keeps everything on chip.
        let a10 = Board::arria10();
        let arch = derive_arch(&a10, ParamSet::SetA).unwrap();
        assert_eq!(KskPlacement::choose(&a10, &arch), KskPlacement::OnChipBram);
    }

    #[test]
    fn module_cost_calibration_rows_exact() {
        // Table 4, 16-core NTT at n = 2^13.
        let r = module_cost(ModuleKind::Ntt, 16, 8192);
        assert_eq!(r.dsp, 160);
        assert_eq!(r.reg, 196_205);
        assert_eq!(r.alm, 67_865);
        assert_eq!(r.m20k, 380);
        assert_eq!(r.bram_bits, 1_514_496);
        // 8-core MULT.
        let m = module_cost(ModuleKind::Mult, 8, 8192);
        assert_eq!((m.dsp, m.reg, m.alm, m.m20k), (176, 61_878, 22_160, 65));
    }

    #[test]
    fn module_cost_extrapolates() {
        // Below the calibrated range: smaller than the 4-core module but
        // keeps infrastructure.
        let one = module_cost(ModuleKind::Intt, 1, 8192);
        let four = module_cost(ModuleKind::Intt, 4, 8192);
        assert!(one.reg < four.reg);
        assert!(one.alm > CoreKind::Intt.cost().alm); // > bare core
        assert_eq!(one.dsp, 10);
        // BRAM scales with n.
        let big = module_cost(ModuleKind::Ntt, 16, 16384);
        assert_eq!(big.bram_bits, 2 * 1_514_496);
    }

    #[test]
    fn bram_totals_have_the_right_shape() {
        // Robust invariants of Table 6's BRAM column: every design fits
        // its board; Set-A uses the least memory; and Set-C only fits
        // because its keys moved to DRAM (on-chip keys would blow the
        // budget). The exact B-vs-C ordering in the paper additionally
        // depends on ksk bank replication details we do not model; the
        // table6 harness prints model-vs-paper deltas.
        let s10 = Board::stratix10();
        let m20k_for = |set: ParamSet| {
            let arch = derive_arch(&s10, set).unwrap();
            let placement = KskPlacement::choose(&s10, &arch);
            design_resources(&s10, &arch, placement).m20k
        };
        let a = m20k_for(ParamSet::SetA);
        let b = m20k_for(ParamSet::SetB);
        let c = m20k_for(ParamSet::SetC);
        assert!(a < b && a < c, "Set-A must be smallest ({a}, {b}, {c})");
        assert!(b <= s10.budget().m20k && c <= s10.budget().m20k);
        // Set-C with on-chip keys would not fit.
        let arch_c = derive_arch(&s10, ParamSet::SetC).unwrap();
        let forced = design_resources(&s10, &arch_c, KskPlacement::OnChipBram);
        assert!(!forced.fits_within(s10.budget()));
    }
}
