//! The functional HEAX accelerator: executes the server-side CKKS
//! operations through the cycle-accurate hardware models.
//!
//! Every polynomial transform goes through
//! [`NttModuleSim`] (banked BRAM,
//! real butterflies) and every coefficient product through the Dyadic-core
//! datapath, so outputs are the *hardware's* outputs — the test suite and
//! `tests/` integration tests check them bit-exactly against the
//! `heax-ckks` golden model. Cycle counts attached to each result come
//! from the same module configurations via the KeySwitch pipeline
//! schedule, so functional results and Table 7/8 performance claims are
//! produced by one artifact.

use std::sync::Arc;

use heax_ckks::ciphertext::Ciphertext;
use heax_ckks::context::CkksContext;
use heax_ckks::eval::scales_match;
use heax_ckks::keys::{GaloisKeys, KeySwitchKey, RelinKey};
use heax_ckks::CkksError;
use heax_hw::board::Board;
use heax_hw::cores::DyadicCore;
use heax_hw::keyswitch_pipeline::{schedule, KeySwitchArch};
use heax_hw::mult_dataflow::{MultModuleConfig, MultModuleSim, MultRunStats};
use heax_hw::ntt_dataflow::{NttModuleConfig, NttModuleSim, NttRunStats};
use heax_math::poly::{Representation, RnsPoly};

use crate::arch::DesignPoint;
use crate::exec::{self, Executor};
use crate::perf::HeaxOp;
use crate::CoreError;

/// Cycle/time accounting attached to every accelerator result.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OpReport {
    /// Which high-level operation ran.
    pub op: HeaxOp,
    /// Steady-state initiation-interval cycles (throughput figure).
    pub interval_cycles: u64,
    /// Latency of a single isolated operation in cycles.
    pub latency_cycles: u64,
    /// Time per operation at the board clock, microseconds.
    pub interval_us: f64,
    /// Host→FPGA words moved (per op).
    pub input_words: u64,
    /// FPGA→host words moved (per op).
    pub output_words: u64,
}

/// The HEAX accelerator bound to a CKKS context and a board.
///
/// RNS limbs stream through the simulated modules concurrently when a
/// parallel execution backend is selected — the software counterpart of
/// the replicated NTT cores and key-switch lanes of the real design. The
/// backend defaults to the global (`HEAX_THREADS`-selected) executor;
/// [`HeaxAccelerator::with_executor`] pins an explicit one. All backends
/// are bit-identical.
#[derive(Clone, Debug)]
pub struct HeaxAccelerator<'a> {
    ctx: &'a CkksContext,
    board: Board,
    arch: KeySwitchArch,
    ntt_config: NttModuleConfig,
    mult_config: MultModuleConfig,
    exec: Arc<dyn Executor>,
}

impl<'a> HeaxAccelerator<'a> {
    /// Builds the accelerator for one of the paper's parameter sets,
    /// deriving the architecture automatically (Table 5).
    ///
    /// # Errors
    ///
    /// [`CoreError::UnsupportedParameters`] if the context's ring degree is
    /// not one of the paper's sets; hardware errors if moduli exceed the
    /// 52-bit datapath bound.
    pub fn new(ctx: &'a CkksContext, board: Board) -> Result<Self, CoreError> {
        let set = match ctx.n() {
            4096 => heax_ckks::ParamSet::SetA,
            8192 => heax_ckks::ParamSet::SetB,
            16384 => heax_ckks::ParamSet::SetC,
            other => {
                return Err(CoreError::UnsupportedParameters {
                    reason: format!("ring degree {other} is not a paper parameter set"),
                })
            }
        };
        let dp = DesignPoint::derive(board, set)?;
        let (ntt_cfg, mult_cfg) = (dp.ntt_config(), dp.mult_config());
        Self::with_arch(ctx, dp.board, dp.arch, ntt_cfg, mult_cfg)
    }

    /// Builds the accelerator with explicit module configurations (used
    /// for custom parameter sets and small test rings).
    ///
    /// # Errors
    ///
    /// Propagates hardware configuration errors; checks every context
    /// modulus against the 52-bit datapath bound.
    pub fn with_arch(
        ctx: &'a CkksContext,
        board: Board,
        arch: KeySwitchArch,
        ntt_config: NttModuleConfig,
        mult_config: MultModuleConfig,
    ) -> Result<Self, CoreError> {
        arch.validate()?;
        for m in ctx.moduli() {
            heax_hw::cores::check_hw_modulus(m)?;
        }
        if arch.n != ctx.n() || ntt_config.n != ctx.n() || mult_config.n != ctx.n() {
            return Err(CoreError::UnsupportedParameters {
                reason: "architecture ring degree disagrees with context".into(),
            });
        }
        Ok(Self {
            ctx,
            board,
            arch,
            ntt_config,
            mult_config,
            exec: exec::global().clone(),
        })
    }

    /// Builder option: replaces the execution backend used for per-limb
    /// dispatch (default: the global `HEAX_THREADS`-selected executor).
    #[must_use]
    pub fn with_executor(mut self, exec: Arc<dyn Executor>) -> Self {
        self.exec = exec;
        self
    }

    /// The execution backend in use.
    pub fn executor(&self) -> &Arc<dyn Executor> {
        &self.exec
    }

    /// The CKKS context.
    pub fn context(&self) -> &CkksContext {
        self.ctx
    }

    /// The board.
    pub fn board(&self) -> &Board {
        &self.board
    }

    /// The KeySwitch architecture in use.
    pub fn arch(&self) -> &KeySwitchArch {
        &self.arch
    }

    /// The NTT/INTT module configuration in use.
    pub fn ntt_config(&self) -> &NttModuleConfig {
        &self.ntt_config
    }

    /// The MULT module configuration in use.
    pub fn mult_config(&self) -> &MultModuleConfig {
        &self.mult_config
    }

    /// Board-level pipeline configuration for scheduling op streams
    /// across `num_cores` replicas of this accelerator's architecture
    /// (see [`heax_hw::scheduler`]).
    ///
    /// # Errors
    ///
    /// Propagates [`heax_hw::scheduler::PipelineConfig::new`] validation.
    pub fn pipeline_config(
        &self,
        num_cores: usize,
    ) -> Result<heax_hw::scheduler::PipelineConfig, CoreError> {
        heax_hw::scheduler::PipelineConfig::new(&self.board, self.arch, self.mult_config, num_cores)
            .map_err(CoreError::Hw)
    }

    /// Cluster configuration for routing op streams across `num_boards`
    /// modeled boards of `num_cores` cores each (see
    /// [`heax_hw::cluster`]).
    ///
    /// # Errors
    ///
    /// Propagates pipeline and cluster configuration validation.
    pub fn cluster_config(
        &self,
        num_boards: usize,
        num_cores: usize,
    ) -> Result<heax_hw::cluster::ClusterConfig, CoreError> {
        heax_hw::cluster::ClusterConfig::new(self.pipeline_config(num_cores)?, num_boards)
            .map_err(CoreError::Hw)
    }

    fn report(&self, op: HeaxOp, interval: u64, latency: u64, inw: u64, outw: u64) -> OpReport {
        OpReport {
            op,
            interval_cycles: interval,
            latency_cycles: latency,
            interval_us: interval as f64 / self.board.freq_hz() * 1e6,
            input_words: inw,
            output_words: outw,
        }
    }

    /// Builds one module simulator per residue of `poly` (validation is
    /// sequential; the heavy transform work is then fanned out).
    fn limb_sims(&self, poly: &RnsPoly) -> Result<Vec<NttModuleSim<'a>>, CoreError> {
        poly.moduli()
            .iter()
            .map(|m| {
                let table = self.find_table(m.value())?;
                NttModuleSim::new(self.ntt_config, table).map_err(CoreError::Hw)
            })
            .collect()
    }

    /// Forward NTT of all residues of a coefficient-form polynomial
    /// through the banked dataflow (Table 7 "NTT" operation processes one
    /// polynomial = one residue; `k` residues stream through the module).
    /// Residues are dispatched across the executor's lanes, one simulated
    /// module instance per limb.
    ///
    /// # Errors
    ///
    /// Representation errors if the input is already in NTT form.
    pub fn ntt(&self, poly: &RnsPoly) -> Result<(RnsPoly, OpReport), CoreError> {
        if poly.representation() == Representation::Ntt {
            return Err(CoreError::Ckks(CkksError::Math(
                heax_math::MathError::RepresentationMismatch,
            )));
        }
        let sims = self.limb_sims(poly)?;
        let mut out = poly.clone();
        let mut stats: Vec<NttRunStats> = vec![NttRunStats::default(); poly.num_residues()];
        let n = self.ctx.n();
        {
            // Each lane transforms one limb and fills that limb's stats
            // slot; zip the two so a lane owns both exclusively.
            let mut slots: Vec<(&mut [u64], &mut NttRunStats)> =
                out.data_mut().chunks_mut(n).zip(stats.iter_mut()).collect();
            exec::for_each_mut(self.exec.as_ref(), &mut slots, |i, (dst, slot)| {
                let (data, s) = sims[i].forward(poly.residue(i));
                dst.copy_from_slice(&data);
                **slot = s;
            });
        }
        out.set_representation(Representation::Ntt);
        let (per, latency) = stats
            .last()
            .map(|s| (s.cycles, s.latency))
            .unwrap_or((0, 0));
        let n = n as u64;
        Ok((out, self.report(HeaxOp::Ntt, per, latency, n, n)))
    }

    /// Inverse NTT through the INTT module.
    ///
    /// # Errors
    ///
    /// Representation errors if the input is already in coefficient form.
    pub fn intt(&self, poly: &RnsPoly) -> Result<(RnsPoly, OpReport), CoreError> {
        if poly.representation() != Representation::Ntt {
            return Err(CoreError::Ckks(CkksError::Math(
                heax_math::MathError::RepresentationMismatch,
            )));
        }
        let sims = self.limb_sims(poly)?;
        let mut out = poly.clone();
        let mut stats: Vec<NttRunStats> = vec![NttRunStats::default(); poly.num_residues()];
        let n = self.ctx.n();
        {
            let mut slots: Vec<(&mut [u64], &mut NttRunStats)> =
                out.data_mut().chunks_mut(n).zip(stats.iter_mut()).collect();
            exec::for_each_mut(self.exec.as_ref(), &mut slots, |i, (dst, slot)| {
                let (data, s) = sims[i].inverse(poly.residue(i));
                dst.copy_from_slice(&data);
                **slot = s;
            });
        }
        out.set_representation(Representation::Coefficient);
        let (per, latency) = stats
            .last()
            .map(|s| (s.cycles, s.latency))
            .unwrap_or((0, 0));
        let n = n as u64;
        Ok((out, self.report(HeaxOp::Intt, per, latency, n, n)))
    }

    /// Homomorphic multiplication through the MULT module (Algorithm 5 /
    /// Figure 1): processes one RNS residue at a time, producing the
    /// `α+β−1`-component product ciphertext.
    ///
    /// # Errors
    ///
    /// Level/scale mismatches as in the software evaluator.
    pub fn dyadic_mult(
        &self,
        ct1: &Ciphertext,
        ct2: &Ciphertext,
    ) -> Result<(Ciphertext, OpReport), CoreError> {
        if ct1.level() != ct2.level() {
            return Err(CoreError::Ckks(CkksError::LevelMismatch {
                a: ct1.level(),
                b: ct2.level(),
            }));
        }
        if !scales_match(ct1.scale(), ct2.scale()) {
            return Err(CoreError::Ckks(CkksError::ScaleMismatch {
                a: ct1.scale(),
                b: ct2.scale(),
            }));
        }
        let n = self.ctx.n();
        let alpha = ct1.size();
        let beta = ct2.size();
        let level = ct1.level();
        let moduli = self.ctx.level_moduli(level);
        let mut out_polys = vec![RnsPoly::zero(n, moduli, Representation::Ntt); alpha + beta - 1];
        let sims: Vec<MultModuleSim> = moduli
            .iter()
            .map(|m| MultModuleSim::new(self.mult_config, *m))
            .collect::<Result<_, _>>()?;
        // One MULT-module pass per residue, fanned across lanes; results
        // land in per-limb slots and are scattered into the output
        // components afterwards (a limb's outputs span every component,
        // so they cannot be written disjointly in place).
        let mut slots: Vec<(Vec<Vec<u64>>, MultRunStats)> = vec![Default::default(); moduli.len()];
        exec::for_each_mut(self.exec.as_ref(), &mut slots, |i, slot| {
            let a: Vec<Vec<u64>> = (0..alpha)
                .map(|c| ct1.component(c).residue(i).to_vec())
                .collect();
            let b: Vec<Vec<u64>> = (0..beta)
                .map(|c| ct2.component(c).residue(i).to_vec())
                .collect();
            *slot = sims[i].multiply(&a, &b);
        });
        let mut cycles = 0u64;
        let mut latency = 0u64;
        for (i, (outs, stats)) in slots.into_iter().enumerate() {
            for (t, res) in outs.into_iter().enumerate() {
                out_polys[t].residue_mut(i).copy_from_slice(&res);
            }
            cycles += stats.cycles;
            latency = stats.latency;
        }
        let ct = Ciphertext::from_parts(out_polys, level, ct1.scale() * ct2.scale())
            .map_err(CoreError::Ckks)?;
        let inw = self.mult_config.input_transfer_words(alpha, beta) * moduli.len() as u64;
        let outw = self.mult_config.output_transfer_words(alpha, beta) * moduli.len() as u64;
        Ok((
            ct,
            self.report(HeaxOp::Dyadic, cycles, cycles + latency, inw, outw),
        ))
    }

    /// Ciphertext-plaintext multiplication — the C-P mode of the MULT
    /// module (Section 4.1): the plaintext plays the β = 1 operand.
    ///
    /// # Errors
    ///
    /// Level mismatches as in the software evaluator.
    pub fn multiply_plain(
        &self,
        ct: &Ciphertext,
        pt: &heax_ckks::Plaintext,
    ) -> Result<(Ciphertext, OpReport), CoreError> {
        if ct.level() != pt.level() {
            return Err(CoreError::Ckks(CkksError::LevelMismatch {
                a: ct.level(),
                b: pt.level(),
            }));
        }
        let n = self.ctx.n();
        let alpha = ct.size();
        let level = ct.level();
        let moduli = self.ctx.level_moduli(level);
        let mut out_polys = vec![RnsPoly::zero(n, moduli, Representation::Ntt); alpha];
        let sims: Vec<MultModuleSim> = moduli
            .iter()
            .map(|m| MultModuleSim::new(self.mult_config, *m))
            .collect::<Result<_, _>>()?;
        let mut slots: Vec<(Vec<Vec<u64>>, MultRunStats)> = vec![Default::default(); moduli.len()];
        exec::for_each_mut(self.exec.as_ref(), &mut slots, |i, slot| {
            let a: Vec<Vec<u64>> = (0..alpha)
                .map(|c| ct.component(c).residue(i).to_vec())
                .collect();
            let b = vec![pt.poly().residue(i).to_vec()];
            *slot = sims[i].multiply(&a, &b);
        });
        let mut cycles = 0u64;
        for (i, (outs, stats)) in slots.into_iter().enumerate() {
            for (t, res) in outs.into_iter().enumerate() {
                out_polys[t].residue_mut(i).copy_from_slice(&res);
            }
            cycles += stats.cycles;
        }
        let out = Ciphertext::from_parts(out_polys, level, ct.scale() * pt.scale())
            .map_err(CoreError::Ckks)?;
        let inw = self.mult_config.input_transfer_words(alpha, 1) * moduli.len() as u64;
        let outw = self.mult_config.output_transfer_words(alpha, 1) * moduli.len() as u64;
        Ok((out, self.report(HeaxOp::Dyadic, cycles, cycles, inw, outw)))
    }

    /// The inner key-switching primitive through the KeySwitch module
    /// datapath (Algorithm 7 / Figure 5): INTT0 → NTT0 → DyadMult
    /// accumulate over `k` iterations, then the INTT1 → NTT1 → MS modulus
    /// switch. Returns `(f₀, f₁)` plus the pipeline's cycle report.
    ///
    /// # Errors
    ///
    /// Shape/representation errors as in the software evaluator.
    pub fn key_switch(
        &self,
        target: &RnsPoly,
        ksk: &KeySwitchKey,
        level: usize,
    ) -> Result<((RnsPoly, RnsPoly), OpReport), CoreError> {
        if target.representation() != Representation::Ntt {
            return Err(CoreError::Ckks(CkksError::Math(
                heax_math::MathError::RepresentationMismatch,
            )));
        }
        let ctx = self.ctx;
        let n = ctx.n();
        let k_chain = ctx.params().k();
        let mut ext_chain: Vec<_> = ctx.level_moduli(level).to_vec();
        ext_chain.push(*ctx.special_modulus());
        let ext_len = ext_chain.len();

        let intt0_cfg = NttModuleConfig::new(n, self.arch.nc_intt0)?;
        let ntt0_cfg = NttModuleConfig::new(n, self.arch.nc_ntt0)?;
        let intt1_cfg = NttModuleConfig::new(n, self.arch.nc_intt1.max(1))?;
        let ntt1_cfg = NttModuleConfig::new(n, self.arch.nc_ntt1)?;

        let mut acc0 = RnsPoly::zero(n, &ext_chain, Representation::Ntt);
        let mut acc1 = RnsPoly::zero(n, &ext_chain, Representation::Ntt);

        // One NTT0 module instance per extended-basis lane, as in the
        // replicated hardware datapath (validated up front so the
        // parallel region below is infallible).
        let ntt0_sims: Vec<NttModuleSim> = ext_chain
            .iter()
            .map(|m| {
                let table = self.find_table(m.value())?;
                NttModuleSim::new(ntt0_cfg, table).map_err(CoreError::Hw)
            })
            .collect::<Result<_, _>>()?;

        // --- k iterations: INTT0 → NTT0 → DyadMult accumulate -----------
        // Lanes (one per extended limb) run concurrently across the
        // executor, exactly like the hardware's parallel NTT0/DyadMult
        // columns in Figure 5. The DyadMult stage multiplies against the
        // key's Shoup (MulRed) tables with lazy [0, 2p) accumulation —
        // the paper's MulRed unit — and the fold to [0, p) is deferred to
        // a single pass after all k iterations.
        for i in 0..=level {
            let table_i = ctx.ntt_table(i);
            let intt0 = NttModuleSim::new(intt0_cfg, table_i)?;
            let (a_coeff, _) = intt0.inverse(target.residue(i));

            let (ksk_b, ksk_a) = ksk.component_shoup(i);
            let a_coeff = &a_coeff;
            let ext_chain = &ext_chain;
            let ntt0_sims = &ntt0_sims;
            exec::for_each_limb2(
                self.exec.as_ref(),
                acc0.data_mut(),
                acc1.data_mut(),
                n,
                |j, d0, d1| {
                    let m = &ext_chain[j];
                    let chain_idx = if j <= level { j } else { k_chain };
                    let owned;
                    let b_ntt: &[u64] = if chain_idx == i {
                        target.residue(i)
                    } else {
                        let reduced: Vec<u64> = a_coeff.iter().map(|&x| m.reduce_u64(x)).collect();
                        owned = ntt0_sims[j].forward(&reduced).0;
                        &owned
                    };
                    let kb = &ksk_b[chain_idx * n..(chain_idx + 1) * n];
                    let ka = &ksk_a[chain_idx * n..(chain_idx + 1) * n];
                    let mut dyad = DyadicCore::new();
                    for (t, &b) in b_ntt.iter().enumerate() {
                        d0[t] = dyad.compute_acc_shoup(d0[t], b, &kb[t], m);
                    }
                    for (t, &b) in b_ntt.iter().enumerate() {
                        d1[t] = dyad.compute_acc_shoup(d1[t], b, &ka[t], m);
                    }
                },
            );
        }

        // Deferred reduction: fold the lazy accumulators to [0, p).
        {
            let ext_chain = &ext_chain;
            exec::for_each_limb2(
                self.exec.as_ref(),
                acc0.data_mut(),
                acc1.data_mut(),
                n,
                |j, d0, d1| {
                    let p = ext_chain[j].value();
                    for d in d0.iter_mut() {
                        if *d >= p {
                            *d -= p;
                        }
                    }
                    for d in d1.iter_mut() {
                        if *d >= p {
                            *d -= p;
                        }
                    }
                },
            );
        }

        // --- Modulus switch (Floor by special prime): INTT1 → NTT1 → MS -
        let consts = ctx.modswitch_constants(level);
        let sp_table = ctx.special_ntt_table();
        let ntt1_sims: Vec<NttModuleSim> = (0..=level)
            .map(|i| NttModuleSim::new(ntt1_cfg, ctx.ntt_table(i)).map_err(CoreError::Hw))
            .collect::<Result<_, _>>()?;
        let floor_one = |acc: &RnsPoly| -> Result<RnsPoly, CoreError> {
            let intt1 = NttModuleSim::new(intt1_cfg, sp_table)?;
            let (a, _) = intt1.inverse(acc.residue(ext_len - 1));
            let mut out = RnsPoly::zero(n, ctx.level_moduli(level), Representation::Ntt);
            let a = &a;
            let out_moduli = ctx.level_moduli(level);
            exec::for_each_limb(self.exec.as_ref(), out.data_mut(), n, |i, dst| {
                let pi = &out_moduli[i];
                let reduced: Vec<u64> = a.iter().map(|&x| pi.reduce_u64(x)).collect();
                let (r_ntt, _) = ntt1_sims[i].forward(&reduced);
                let inv = consts.inv(i);
                let src = acc.residue(i);
                for (t, d) in dst.iter_mut().enumerate() {
                    // MS module: subtract then multiply by p_sp^{-1}.
                    *d = inv.mul_red(pi.sub_mod(src[t], r_ntt[t]), pi);
                }
            });
            Ok(out)
        };
        let f0 = floor_one(&acc0)?;
        let f1 = floor_one(&acc1)?;

        // Cycle accounting from the pipeline schedule.
        let sched = schedule(&self.arch, 1)?;
        let interval = self.arch.steady_interval_cycles();
        let latency = sched.first_op_latency;
        let inw = (level + 2) as u64 * n as u64; // input poly residues + special
        let outw = 2 * (level + 1) as u64 * n as u64;
        Ok((
            (f0, f1),
            self.report(HeaxOp::KeySwitch, interval, latency, inw, outw),
        ))
    }

    /// Relinearization on the accelerator: KeySwitch on `c₂`, then the
    /// additions (performed by the accumulator banks).
    ///
    /// # Errors
    ///
    /// [`CkksError::InvalidCiphertext`] unless the input has three
    /// components.
    pub fn relinearize(
        &self,
        ct: &Ciphertext,
        rlk: &RelinKey,
    ) -> Result<(Ciphertext, OpReport), CoreError> {
        if ct.size() != 3 {
            return Err(CoreError::Ckks(CkksError::InvalidCiphertext {
                components: ct.size(),
                expected: "exactly 3",
            }));
        }
        let ((f0, f1), mut report) = self.key_switch(ct.component(2), rlk.ksk(), ct.level())?;
        let c0 = ct.component(0).add(&f0).map_err(CkksError::Math)?;
        let c1 = ct.component(1).add(&f1).map_err(CkksError::Math)?;
        let out = Ciphertext::from_parts(vec![c0, c1], ct.level(), ct.scale())
            .map_err(CoreError::Ckks)?;
        report.op = HeaxOp::KeySwitch;
        Ok((out, report))
    }

    /// Rotation on the accelerator: the Galois permutation is pure
    /// addressing (free in hardware); the KeySwitch dominates.
    ///
    /// # Errors
    ///
    /// Missing-key and shape errors as in the software evaluator.
    pub fn rotate(
        &self,
        ct: &Ciphertext,
        step: i64,
        gks: &GaloisKeys,
    ) -> Result<(Ciphertext, OpReport), CoreError> {
        if ct.size() != 2 {
            return Err(CoreError::Ckks(CkksError::InvalidCiphertext {
                components: ct.size(),
                expected: "exactly 2 (relinearize first)",
            }));
        }
        let elt = heax_ckks::galois::galois_elt_from_step(step, self.ctx.n());
        let ksk = gks.key(elt).map_err(CoreError::Ckks)?;
        let table = gks.permutation(elt).map_err(CoreError::Ckks)?;
        let c0 =
            heax_ckks::galois::apply_galois_ntt(ct.component(0), table).map_err(CkksError::Math)?;
        let c1 =
            heax_ckks::galois::apply_galois_ntt(ct.component(1), table).map_err(CkksError::Math)?;
        let ((f0, f1), mut report) = self.key_switch(&c1, ksk, ct.level())?;
        let c0 = c0.add(&f0).map_err(CkksError::Math)?;
        let out = Ciphertext::from_parts(vec![c0, f1], ct.level(), ct.scale())
            .map_err(CoreError::Ckks)?;
        report.op = HeaxOp::KeySwitch;
        Ok((out, report))
    }

    /// Hoisted multi-rotation on the accelerator (the batched-rotation
    /// pattern of the paper's matrix-vector and convolution workloads):
    /// the `c₁` component is decomposed through INTT0/NTT0 **once**, then
    /// every requested Galois element runs only the DyadMult accumulate
    /// (permutation is pure addressing) and the modulus-switch tail.
    ///
    /// The returned report covers the whole batch: the first rotation
    /// pays the full KeySwitch interval, each subsequent one only the
    /// hoisted tail ([`KeySwitchArch::hoisted_interval_cycles`]).
    ///
    /// Outputs are bit-exact against
    /// [`heax_ckks::Evaluator::rotate_many`].
    ///
    /// # Errors
    ///
    /// Missing-key and shape errors as in the software evaluator.
    pub fn rotate_many(
        &self,
        ct: &Ciphertext,
        steps: &[i64],
        gks: &GaloisKeys,
    ) -> Result<(Vec<Ciphertext>, OpReport), CoreError> {
        if ct.size() != 2 {
            return Err(CoreError::Ckks(CkksError::InvalidCiphertext {
                components: ct.size(),
                expected: "exactly 2 (relinearize first)",
            }));
        }
        if steps.is_empty() {
            return Ok((Vec::new(), self.report(HeaxOp::KeySwitch, 0, 0, 0, 0)));
        }
        let ctx = self.ctx;
        let n = ctx.n();
        let k_chain = ctx.params().k();
        let level = ct.level();
        let mut ext_chain: Vec<_> = ctx.level_moduli(level).to_vec();
        ext_chain.push(*ctx.special_modulus());
        let ext_len = ext_chain.len();

        // Resolve keys up front so a missing key fails before any work.
        let keys: Vec<(&KeySwitchKey, &[usize])> = steps
            .iter()
            .map(|&s| {
                let elt = heax_ckks::galois::galois_elt_from_step(s, n);
                Ok((
                    gks.key(elt).map_err(CoreError::Ckks)?,
                    gks.permutation(elt).map_err(CoreError::Ckks)?,
                ))
            })
            .collect::<Result<_, CoreError>>()?;

        let intt0_cfg = NttModuleConfig::new(n, self.arch.nc_intt0)?;
        let ntt0_cfg = NttModuleConfig::new(n, self.arch.nc_ntt0)?;
        let intt1_cfg = NttModuleConfig::new(n, self.arch.nc_intt1.max(1))?;
        let ntt1_cfg = NttModuleConfig::new(n, self.arch.nc_ntt1)?;
        let ntt0_sims: Vec<NttModuleSim> = ext_chain
            .iter()
            .map(|m| {
                let table = self.find_table(m.value())?;
                NttModuleSim::new(ntt0_cfg, table).map_err(CoreError::Hw)
            })
            .collect::<Result<_, _>>()?;

        // --- Hoist: decompose c₁ once through INTT0 → NTT0 --------------
        let c1 = ct.component(1);
        let mut digits = vec![0u64; (level + 1) * ext_len * n];
        for i in 0..=level {
            let intt0 = NttModuleSim::new(intt0_cfg, ctx.ntt_table(i))?;
            let (a_coeff, _) = intt0.inverse(c1.residue(i));
            let a_coeff = &a_coeff;
            let ext_chain = &ext_chain;
            let ntt0_sims = &ntt0_sims;
            let row = &mut digits[i * ext_len * n..(i + 1) * ext_len * n];
            exec::for_each_limb(self.exec.as_ref(), row, n, |j, dst| {
                let chain_idx = if j <= level { j } else { k_chain };
                if chain_idx == i {
                    dst.copy_from_slice(c1.residue(i));
                } else {
                    let m = &ext_chain[j];
                    let reduced: Vec<u64> = a_coeff.iter().map(|&x| m.reduce_u64(x)).collect();
                    let (f, _) = ntt0_sims[j].forward(&reduced);
                    dst.copy_from_slice(&f);
                }
            });
        }

        // --- Per rotation: DyadMult accumulate + INTT1 → NTT1 → MS ------
        let consts = ctx.modswitch_constants(level);
        let sp_table = ctx.special_ntt_table();
        let ntt1_sims: Vec<NttModuleSim> = (0..=level)
            .map(|i| NttModuleSim::new(ntt1_cfg, ctx.ntt_table(i)).map_err(CoreError::Hw))
            .collect::<Result<_, _>>()?;
        let mut outs = Vec::with_capacity(steps.len());
        for (ksk, table) in keys {
            let mut acc0 = RnsPoly::zero(n, &ext_chain, Representation::Ntt);
            let mut acc1 = RnsPoly::zero(n, &ext_chain, Representation::Ntt);
            for i in 0..=level {
                let (ksk_b, ksk_a) = ksk.component_shoup(i);
                let row = &digits[i * ext_len * n..(i + 1) * ext_len * n];
                let ext_chain = &ext_chain;
                exec::for_each_limb2(
                    self.exec.as_ref(),
                    acc0.data_mut(),
                    acc1.data_mut(),
                    n,
                    |j, d0, d1| {
                        let m = &ext_chain[j];
                        let chain_idx = if j <= level { j } else { k_chain };
                        let dig = &row[j * n..(j + 1) * n];
                        let kb = &ksk_b[chain_idx * n..(chain_idx + 1) * n];
                        let ka = &ksk_a[chain_idx * n..(chain_idx + 1) * n];
                        let mut dyad = DyadicCore::new();
                        // τ(digit) is pure addressing, fused into the
                        // accumulate exactly like the hardware's BRAM
                        // read-address permutation.
                        for t in 0..n {
                            let x = dig[table[t]];
                            d0[t] = dyad.compute_acc_shoup(d0[t], x, &kb[t], m);
                            d1[t] = dyad.compute_acc_shoup(d1[t], x, &ka[t], m);
                        }
                    },
                );
            }
            {
                let ext_chain = &ext_chain;
                exec::for_each_limb2(
                    self.exec.as_ref(),
                    acc0.data_mut(),
                    acc1.data_mut(),
                    n,
                    |j, d0, d1| {
                        let p = ext_chain[j].value();
                        for d in d0.iter_mut() {
                            if *d >= p {
                                *d -= p;
                            }
                        }
                        for d in d1.iter_mut() {
                            if *d >= p {
                                *d -= p;
                            }
                        }
                    },
                );
            }
            let floor_one = |acc: &RnsPoly| -> Result<RnsPoly, CoreError> {
                let intt1 = NttModuleSim::new(intt1_cfg, sp_table)?;
                let (a, _) = intt1.inverse(acc.residue(ext_len - 1));
                let mut out = RnsPoly::zero(n, ctx.level_moduli(level), Representation::Ntt);
                let a = &a;
                let out_moduli = ctx.level_moduli(level);
                let ntt1_sims = &ntt1_sims;
                exec::for_each_limb(self.exec.as_ref(), out.data_mut(), n, |i, dst| {
                    let pi = &out_moduli[i];
                    let reduced: Vec<u64> = a.iter().map(|&x| pi.reduce_u64(x)).collect();
                    let (r_ntt, _) = ntt1_sims[i].forward(&reduced);
                    let inv = consts.inv(i);
                    let src = acc.residue(i);
                    for (t, d) in dst.iter_mut().enumerate() {
                        *d = inv.mul_red(pi.sub_mod(src[t], r_ntt[t]), pi);
                    }
                });
                Ok(out)
            };
            let mut f0 = floor_one(&acc0)?;
            let f1 = floor_one(&acc1)?;
            // c₀' = τ(c₀) + f₀, permutation fused into the accumulator add.
            let c0 = ct.component(0);
            let lm = ctx.level_moduli(level);
            exec::for_each_limb(self.exec.as_ref(), f0.data_mut(), n, |i, dst| {
                let m = &lm[i];
                let src = c0.residue(i);
                for (t, d) in dst.iter_mut().enumerate() {
                    *d = m.add_mod(*d, src[table[t]]);
                }
            });
            outs.push(
                Ciphertext::from_parts(vec![f0, f1], level, ct.scale()).map_err(CoreError::Ckks)?,
            );
        }

        // Batch report: first rotation at the full KeySwitch interval,
        // the rest at the hoisted tail interval.
        let sched = schedule(&self.arch, 1)?;
        let t = steps.len() as u64; // >= 1: the empty batch returned early
        let full = self.arch.steady_interval_cycles();
        let tail = self.arch.hoisted_interval_cycles();
        let interval = full + (t - 1) * tail;
        let latency = sched.first_op_latency + (t - 1) * tail;
        let inw = (level + 2) as u64 * n as u64;
        let outw = t * 2 * (level + 1) as u64 * n as u64;
        Ok((
            outs,
            self.report(HeaxOp::KeySwitch, interval, latency, inw, outw),
        ))
    }

    /// The Table 8 composite: homomorphic multiply (MULT module) plus
    /// relinearization (KeySwitch module). In steady state the two modules
    /// overlap, so the composite initiation interval is the KeySwitch
    /// interval.
    ///
    /// # Errors
    ///
    /// Union of [`HeaxAccelerator::dyadic_mult`] and
    /// [`HeaxAccelerator::relinearize`] errors.
    pub fn multiply_relin(
        &self,
        ct1: &Ciphertext,
        ct2: &Ciphertext,
        rlk: &RelinKey,
    ) -> Result<(Ciphertext, OpReport), CoreError> {
        let (prod, mult_rep) = self.dyadic_mult(ct1, ct2)?;
        let (out, ks_rep) = self.relinearize(&prod, rlk)?;
        let interval = mult_rep.interval_cycles.max(ks_rep.interval_cycles);
        let mut report = self.report(
            HeaxOp::MultRelin,
            interval,
            mult_rep.latency_cycles + ks_rep.latency_cycles,
            mult_rep.input_words,
            ks_rep.output_words,
        );
        report.op = HeaxOp::MultRelin;
        Ok((out, report))
    }

    fn find_table(&self, modulus: u64) -> Result<&'a heax_math::ntt::NttTable, CoreError> {
        self.ctx
            .ntt_tables()
            .iter()
            .find(|t| t.modulus().value() == modulus)
            .ok_or_else(|| CoreError::UnsupportedParameters {
                reason: format!("no NTT table for modulus {modulus}"),
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heax_ckks::{
        CkksContext, CkksEncoder, CkksParams, Decryptor, Encryptor, Evaluator, PublicKey, SecretKey,
    };
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Small hardware-compatible context: n = 64, 40/41-bit primes.
    fn small_ctx() -> CkksContext {
        let chain = heax_math::primes::generate_prime_chain(&[40, 40, 40, 41], 64).unwrap();
        CkksContext::new(CkksParams::new(64, chain, (1u64 << 32) as f64).unwrap()).unwrap()
    }

    fn small_arch() -> KeySwitchArch {
        KeySwitchArch {
            n: 64,
            k: 3,
            nc_intt0: 4,
            m0: 2,
            nc_ntt0: 4,
            num_dyad: 3,
            nc_dyad: 4,
            nc_intt1: 2,
            nc_ntt1: 4,
            nc_ms: 2,
        }
    }

    struct H {
        ctx: CkksContext,
        sk: SecretKey,
        pk: PublicKey,
        rlk: RelinKey,
        rng: StdRng,
    }

    fn harness(seed: u64) -> H {
        let ctx = small_ctx();
        let mut rng = StdRng::seed_from_u64(seed);
        let sk = SecretKey::generate(&ctx, &mut rng);
        let pk = PublicKey::generate(&ctx, &sk, &mut rng);
        let rlk = RelinKey::generate(&ctx, &sk, &mut rng);
        H {
            ctx,
            sk,
            pk,
            rlk,
            rng,
        }
    }

    fn accel(ctx: &CkksContext) -> HeaxAccelerator<'_> {
        // m0 = 3 is not a power of two in the generic validate? (3 is not
        // a power of two — but m0 is not required to be; validate checks
        // module core counts.)
        HeaxAccelerator::with_arch(
            ctx,
            Board::stratix10(),
            small_arch(),
            NttModuleConfig::new(64, 4).unwrap(),
            MultModuleConfig::new(64, 8).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn hw_ntt_matches_software() {
        let h = harness(50);
        let acc = accel(&h.ctx);
        let moduli = h.ctx.level_moduli(h.ctx.max_level()).to_vec();
        let mut poly = RnsPoly::zero(64, &moduli, Representation::Coefficient);
        for (i, m) in moduli.iter().enumerate() {
            for (j, c) in poly.residue_mut(i).iter_mut().enumerate() {
                *c = (j as u64 * 37 + i as u64) % m.value();
            }
        }
        let (hw_out, report) = acc.ntt(&poly).unwrap();
        let mut sw = poly.clone();
        sw.ntt_forward(h.ctx.ntt_tables()).unwrap();
        assert_eq!(hw_out, sw);
        assert!(report.interval_cycles > 0);
        // And back.
        let (hw_back, _) = acc.intt(&hw_out).unwrap();
        assert_eq!(hw_back, poly);
    }

    #[test]
    fn hw_multiply_matches_evaluator() {
        let mut h = harness(51);
        let enc = CkksEncoder::new(&h.ctx);
        let scale = h.ctx.params().scale();
        let pt1 = enc
            .encode_real(&[1.5, -2.0], scale, h.ctx.max_level())
            .unwrap();
        let pt2 = enc
            .encode_real(&[3.0, 4.0], scale, h.ctx.max_level())
            .unwrap();
        let e = Encryptor::new(&h.ctx, &h.pk);
        let c1 = e.encrypt(&pt1, &mut h.rng).unwrap();
        let c2 = e.encrypt(&pt2, &mut h.rng).unwrap();
        let acc = accel(&h.ctx);
        let (hw_prod, report) = acc.dyadic_mult(&c1, &c2).unwrap();
        let sw_prod = Evaluator::new(&h.ctx).multiply(&c1, &c2).unwrap();
        assert_eq!(hw_prod, sw_prod);
        assert_eq!(report.op, HeaxOp::Dyadic);
    }

    #[test]
    fn hw_keyswitch_bit_exact_vs_evaluator() {
        let mut h = harness(52);
        let enc = CkksEncoder::new(&h.ctx);
        let scale = h.ctx.params().scale();
        let pt1 = enc.encode_real(&[2.0], scale, h.ctx.max_level()).unwrap();
        let e = Encryptor::new(&h.ctx, &h.pk);
        let c1 = e.encrypt(&pt1, &mut h.rng).unwrap();
        let prod = Evaluator::new(&h.ctx).multiply(&c1, &c1).unwrap();

        let acc = accel(&h.ctx);
        let ((f0, f1), report) = acc
            .key_switch(prod.component(2), h.rlk.ksk(), prod.level())
            .unwrap();
        let (g0, g1) = Evaluator::new(&h.ctx)
            .key_switch(prod.component(2), h.rlk.ksk(), prod.level())
            .unwrap();
        assert_eq!(f0, g0, "hardware f0 must equal golden model");
        assert_eq!(f1, g1, "hardware f1 must equal golden model");
        assert_eq!(report.interval_cycles, acc.arch().steady_interval_cycles());
    }

    #[test]
    fn hw_relinearize_decrypts_correctly() {
        let mut h = harness(53);
        let enc = CkksEncoder::new(&h.ctx);
        let scale = h.ctx.params().scale();
        let pt1 = enc
            .encode_real(&[1.5, 2.0], scale, h.ctx.max_level())
            .unwrap();
        let pt2 = enc
            .encode_real(&[-3.0, 0.5], scale, h.ctx.max_level())
            .unwrap();
        let e = Encryptor::new(&h.ctx, &h.pk);
        let c1 = e.encrypt(&pt1, &mut h.rng).unwrap();
        let c2 = e.encrypt(&pt2, &mut h.rng).unwrap();
        let acc = accel(&h.ctx);
        let (out, report) = acc.multiply_relin(&c1, &c2, &h.rlk).unwrap();
        assert_eq!(out.size(), 2);
        assert_eq!(report.op, HeaxOp::MultRelin);
        let dec = Decryptor::new(&h.ctx, &h.sk).decrypt(&out).unwrap();
        let vals = enc.decode_real(&dec).unwrap();
        assert!((vals[0] + 4.5).abs() < 1e-1, "{}", vals[0]);
        assert!((vals[1] - 1.0).abs() < 1e-1, "{}", vals[1]);
    }

    #[test]
    fn hw_rotation_matches_software() {
        let mut h = harness(54);
        let enc = CkksEncoder::new(&h.ctx);
        let scale = h.ctx.params().scale();
        let vals: Vec<f64> = (0..h.ctx.n() / 2).map(|i| i as f64).collect();
        let pt = enc.encode_real(&vals, scale, h.ctx.max_level()).unwrap();
        let e = Encryptor::new(&h.ctx, &h.pk);
        let ct = e.encrypt(&pt, &mut h.rng).unwrap();
        let gks = GaloisKeys::generate(&h.ctx, &h.sk, &[1], &mut h.rng);
        let acc = accel(&h.ctx);
        let (hw_rot, _) = acc.rotate(&ct, 1, &gks).unwrap();
        let sw_rot = Evaluator::new(&h.ctx).rotate(&ct, 1, &gks).unwrap();
        assert_eq!(hw_rot, sw_rot, "hardware rotation must match software");
    }

    #[test]
    fn hw_rotate_many_matches_software_hoisted_path() {
        let mut h = harness(58);
        let enc = CkksEncoder::new(&h.ctx);
        let scale = h.ctx.params().scale();
        let vals: Vec<f64> = (0..h.ctx.n() / 2).map(|i| i as f64 * 0.25).collect();
        let pt = enc.encode_real(&vals, scale, h.ctx.max_level()).unwrap();
        let e = Encryptor::new(&h.ctx, &h.pk);
        let ct = e.encrypt(&pt, &mut h.rng).unwrap();
        let steps = [1i64, -1, 3];
        let gks = GaloisKeys::generate(&h.ctx, &h.sk, &steps, &mut h.rng);
        let acc = accel(&h.ctx);
        let (hw, report) = acc.rotate_many(&ct, &steps, &gks).unwrap();
        let sw = Evaluator::new(&h.ctx)
            .rotate_many(&ct, &steps, &gks)
            .unwrap();
        assert_eq!(hw.len(), steps.len());
        for (hwc, swc) in hw.iter().zip(&sw) {
            assert_eq!(
                hwc, swc,
                "hardware hoisted rotation must match golden model"
            );
        }
        // The batched interval must beat t sequential key switches.
        let full = acc.arch().steady_interval_cycles();
        assert!(report.interval_cycles < steps.len() as u64 * full);
        assert!(report.interval_cycles >= full);
        // Empty batch is a no-op report.
        let (none, rep0) = acc.rotate_many(&ct, &[], &gks).unwrap();
        assert!(none.is_empty());
        assert_eq!(rep0.interval_cycles, 0);
    }

    #[test]
    fn hw_multiply_plain_matches_evaluator() {
        let mut h = harness(56);
        let enc = CkksEncoder::new(&h.ctx);
        let scale = h.ctx.params().scale();
        let pt_m = enc
            .encode_real(&[2.0, 3.0], scale, h.ctx.max_level())
            .unwrap();
        let pt_w = enc
            .encode_real(&[4.0, -1.0], scale, h.ctx.max_level())
            .unwrap();
        let e = Encryptor::new(&h.ctx, &h.pk);
        let ct = e.encrypt(&pt_m, &mut h.rng).unwrap();
        let acc = accel(&h.ctx);
        let (hw, rep) = acc.multiply_plain(&ct, &pt_w).unwrap();
        let sw = Evaluator::new(&h.ctx).multiply_plain(&ct, &pt_w).unwrap();
        assert_eq!(hw, sw);
        assert!(rep.interval_cycles > 0);
        // C-P transfers (α+1)·n words in and α·n out, per active residue
        // (3 residues at the top level of the k = 3 test chain).
        assert_eq!(rep.input_words, 3 * 64 * 3);
        assert_eq!(rep.output_words, 2 * 64 * 3);
    }

    #[test]
    fn rejects_wide_moduli() {
        // 60-bit primes exceed the 52-bit datapath bound.
        let chain = heax_math::primes::generate_prime_chain(&[60, 60, 61], 64).unwrap();
        let ctx =
            CkksContext::new(CkksParams::new(64, chain, (1u64 << 40) as f64).unwrap()).unwrap();
        let err = HeaxAccelerator::with_arch(
            &ctx,
            Board::stratix10(),
            small_arch(),
            NttModuleConfig::new(64, 4).unwrap(),
            MultModuleConfig::new(64, 8).unwrap(),
        );
        assert!(matches!(err, Err(CoreError::Hw(_))));
    }

    #[test]
    fn parallel_backend_bit_identical_to_sequential() {
        let mut h = harness(57);
        let enc = CkksEncoder::new(&h.ctx);
        let scale = h.ctx.params().scale();
        let pt1 = enc
            .encode_real(&[1.25, -0.5], scale, h.ctx.max_level())
            .unwrap();
        let pt2 = enc
            .encode_real(&[2.0, 3.5], scale, h.ctx.max_level())
            .unwrap();
        let e = Encryptor::new(&h.ctx, &h.pk);
        let c1 = e.encrypt(&pt1, &mut h.rng).unwrap();
        let c2 = e.encrypt(&pt2, &mut h.rng).unwrap();
        let seq = accel(&h.ctx).with_executor(std::sync::Arc::new(crate::exec::Sequential));
        let par = accel(&h.ctx).with_executor(crate::exec::with_threads(4));
        assert_eq!(par.executor().threads(), 4);

        // NTT/INTT.
        let moduli = h.ctx.level_moduli(h.ctx.max_level()).to_vec();
        let mut poly = RnsPoly::zero(64, &moduli, Representation::Coefficient);
        for (i, m) in moduli.iter().enumerate() {
            for (j, c) in poly.residue_mut(i).iter_mut().enumerate() {
                *c = (j as u64 * 101 + i as u64 * 7) % m.value();
            }
        }
        let (ntt_seq, rep_seq) = seq.ntt(&poly).unwrap();
        let (ntt_par, rep_par) = par.ntt(&poly).unwrap();
        assert_eq!(ntt_seq, ntt_par);
        assert_eq!(rep_seq, rep_par);
        assert_eq!(seq.intt(&ntt_seq).unwrap().0, par.intt(&ntt_par).unwrap().0);

        // Dyadic multiply and the full key-switch datapath.
        let (prod_seq, _) = seq.dyadic_mult(&c1, &c2).unwrap();
        let (prod_par, _) = par.dyadic_mult(&c1, &c2).unwrap();
        assert_eq!(prod_seq, prod_par);
        let ((f0s, f1s), _) = seq
            .key_switch(prod_seq.component(2), h.rlk.ksk(), prod_seq.level())
            .unwrap();
        let ((f0p, f1p), _) = par
            .key_switch(prod_par.component(2), h.rlk.ksk(), prod_par.level())
            .unwrap();
        assert_eq!(f0s, f0p);
        assert_eq!(f1s, f1p);
    }

    #[test]
    fn mismatched_levels_rejected() {
        let mut h = harness(55);
        let enc = CkksEncoder::new(&h.ctx);
        let scale = h.ctx.params().scale();
        let pt = enc.encode_real(&[1.0], scale, h.ctx.max_level()).unwrap();
        let e = Encryptor::new(&h.ctx, &h.pk);
        let c1 = e.encrypt(&pt, &mut h.rng).unwrap();
        let dropped = Evaluator::new(&h.ctx).mod_switch_to_next(&c1).unwrap();
        let acc = accel(&h.ctx);
        assert!(acc.dyadic_mult(&c1, &dropped).is_err());
    }
}
