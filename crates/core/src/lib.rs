//! # heax-core
//!
//! The HEAX accelerator (the paper's primary contribution) as a library:
//!
//! * [`arch`] — automatic derivation of the KeySwitch architecture from a
//!   board and a parameter set (Table 5, "no manual tuning");
//! * [`resources`] — full-design resource accounting calibrated against
//!   the paper's measured module costs (Tables 4 and 6);
//! * [`perf`] — the closed-form performance model reproducing every HEAX
//!   figure of Tables 7 and 8;
//! * [`accel`] — a functional accelerator that executes CKKS operations
//!   through the cycle-accurate hardware simulators of `heax-hw`,
//!   bit-exact against the `heax-ckks` golden model;
//! * [`exec`] — execution backends (sequential / scoped thread pool)
//!   dispatching limb-level work across lanes, mirroring the hardware's
//!   per-residue concurrency;
//! * [`system`] — the host+board system view (Figure 7) with PCIe/DRAM
//!   transfer modeling and memory-mapped results.
//!
//! ## Example
//!
//! ```
//! use heax_core::arch::DesignPoint;
//! use heax_core::perf::{estimate, HeaxOp};
//! use heax_ckks::ParamSet;
//! use heax_hw::board::Board;
//!
//! # fn main() -> Result<(), heax_hw::HwError> {
//! // Derive the Stratix 10 / Set-B design (a Table 5 row) and read off
//! // its KeySwitch throughput (a Table 8 cell).
//! let dp = DesignPoint::derive(Board::stratix10(), ParamSet::SetB)?;
//! let ks = estimate(&dp, HeaxOp::KeySwitch);
//! assert_eq!(ks.cycles, 13312);
//! assert!((ks.ops_per_sec - 22536.0).abs() < 25.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod accel;
pub mod arch;
pub mod exec;
pub mod perf;
pub mod resources;
pub mod system;

use core::fmt;

use heax_ckks::CkksError;
use heax_hw::HwError;

pub use accel::{HeaxAccelerator, OpReport};
pub use arch::DesignPoint;
pub use system::HeaxSystem;

/// Errors produced by the accelerator layer.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// Error from the CKKS scheme layer.
    Ckks(CkksError),
    /// Error from the hardware model layer.
    Hw(HwError),
    /// The context's parameters cannot run on this accelerator.
    UnsupportedParameters {
        /// Human-readable reason.
        reason: String,
    },
    /// Board DRAM capacity exceeded by memory-mapped results.
    DramFull {
        /// Bytes requested.
        requested: u64,
        /// Bytes still available.
        available: u64,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Ckks(e) => write!(f, "ckks error: {e}"),
            Self::Hw(e) => write!(f, "hardware error: {e}"),
            Self::UnsupportedParameters { reason } => {
                write!(f, "unsupported parameters: {reason}")
            }
            Self::DramFull {
                requested,
                available,
            } => write!(
                f,
                "board DRAM full: requested {requested} bytes, {available} available"
            ),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Ckks(e) => Some(e),
            Self::Hw(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CkksError> for CoreError {
    fn from(e: CkksError) -> Self {
        Self::Ckks(e)
    }
}

impl From<HwError> for CoreError {
    fn from(e: HwError) -> Self {
        Self::Hw(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_conversions_and_display() {
        let e: CoreError = CkksError::LevelExhausted.into();
        assert!(e.to_string().contains("ckks"));
        assert!(std::error::Error::source(&e).is_some());
        let h: CoreError = HwError::InvalidConfig { reason: "x".into() }.into();
        assert!(h.to_string().contains("hardware"));
        fn assert_traits<T: std::error::Error + Send + Sync + 'static>() {}
        assert_traits::<CoreError>();
    }
}
