//! Property-based tests for the math substrate.

use heax_math::ntt::{bit_reverse, NttTable};
use heax_math::poly::{Representation, RnsPoly};
use heax_math::primes::generate_ntt_primes;
use heax_math::rns::RnsBasis;
use heax_math::word::{Modulus, MulRedConstant};
use proptest::prelude::*;

fn arb_modulus() -> impl Strategy<Value = Modulus> {
    // A spread of real NTT primes of different widths (n = 64 to stay fast).
    prop::sample::select(vec![
        generate_ntt_primes(20, 1, 64).unwrap()[0],
        generate_ntt_primes(30, 1, 64).unwrap()[0],
        generate_ntt_primes(36, 1, 64).unwrap()[0],
        generate_ntt_primes(50, 1, 64).unwrap()[0],
        generate_ntt_primes(60, 1, 64).unwrap()[0],
    ])
    .prop_map(|p| Modulus::new(p).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn barrett_reduce_u64_matches_rem(p in arb_modulus(), x in any::<u64>()) {
        prop_assert_eq!(p.reduce_u64(x), x % p.value());
    }

    #[test]
    fn barrett_reduce_u128_matches_rem(p in arb_modulus(), x in any::<u128>()) {
        // Restrict to the Algorithm 1 input domain [0, (p-1)^2].
        let bound = (p.value() as u128 - 1) * (p.value() as u128 - 1);
        let x = x % (bound + 1);
        prop_assert_eq!(p.reduce_u128(x) as u128, x % p.value() as u128);
    }

    #[test]
    fn mulred_matches_barrett(p in arb_modulus(), x in any::<u64>(), y in any::<u64>()) {
        let x = x % p.value();
        let y = y % p.value();
        let c = MulRedConstant::new(y, &p);
        prop_assert_eq!(c.mul_red(x, &p), p.mul_mod(x, y));
    }

    #[test]
    fn field_laws(p in arb_modulus(), a in any::<u64>(), b in any::<u64>(), c in any::<u64>()) {
        let (a, b, c) = (a % p.value(), b % p.value(), c % p.value());
        // Commutativity and associativity of both operations.
        prop_assert_eq!(p.add_mod(a, b), p.add_mod(b, a));
        prop_assert_eq!(p.mul_mod(a, b), p.mul_mod(b, a));
        prop_assert_eq!(p.add_mod(p.add_mod(a, b), c), p.add_mod(a, p.add_mod(b, c)));
        prop_assert_eq!(p.mul_mod(p.mul_mod(a, b), c), p.mul_mod(a, p.mul_mod(b, c)));
        // Distributivity.
        prop_assert_eq!(
            p.mul_mod(a, p.add_mod(b, c)),
            p.add_mod(p.mul_mod(a, b), p.mul_mod(a, c))
        );
        // Inverses.
        prop_assert_eq!(p.add_mod(a, p.neg_mod(a)), 0);
        if a != 0 {
            prop_assert_eq!(p.mul_mod(a, p.inv_mod(a).unwrap()), 1);
        }
        // Halving.
        prop_assert_eq!(p.add_mod(p.div2_mod(a), p.div2_mod(a)), a);
    }

    #[test]
    fn pow_mod_is_homomorphic(p in arb_modulus(), x in any::<u64>(), e1 in 0u64..1000, e2 in 0u64..1000) {
        let x = x % p.value();
        prop_assert_eq!(
            p.pow_mod(x, e1 + e2),
            p.mul_mod(p.pow_mod(x, e1), p.pow_mod(x, e2))
        );
    }

    #[test]
    fn bit_reverse_is_involution(x in 0usize..(1 << 12), bits in 1u32..13) {
        let x = x & ((1 << bits) - 1);
        prop_assert_eq!(bit_reverse(bit_reverse(x, bits), bits), x);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn ntt_roundtrip(coeffs in prop::collection::vec(any::<u64>(), 64)) {
        let p = Modulus::new(generate_ntt_primes(40, 1, 64).unwrap()[0]).unwrap();
        let t = NttTable::new(64, p).unwrap();
        let mut a: Vec<u64> = coeffs.iter().map(|&c| p.reduce_u64(c)).collect();
        let orig = a.clone();
        t.forward(&mut a);
        t.inverse(&mut a);
        prop_assert_eq!(a, orig);
    }

    #[test]
    fn ntt_is_linear(
        a in prop::collection::vec(any::<u64>(), 64),
        b in prop::collection::vec(any::<u64>(), 64),
        s in any::<u64>(),
    ) {
        let p = Modulus::new(generate_ntt_primes(40, 1, 64).unwrap()[0]).unwrap();
        let t = NttTable::new(64, p).unwrap();
        let s = s % p.value();
        let a: Vec<u64> = a.iter().map(|&c| p.reduce_u64(c)).collect();
        let b: Vec<u64> = b.iter().map(|&c| p.reduce_u64(c)).collect();
        // NTT(s·a + b) == s·NTT(a) + NTT(b)
        let mut combo: Vec<u64> = a.iter().zip(&b)
            .map(|(&x, &y)| p.add_mod(p.mul_mod(s, x), y)).collect();
        let (mut ta, mut tb) = (a, b);
        t.forward(&mut combo);
        t.forward(&mut ta);
        t.forward(&mut tb);
        for i in 0..64 {
            prop_assert_eq!(combo[i], p.add_mod(p.mul_mod(s, ta[i]), tb[i]));
        }
    }

    #[test]
    fn convolution_theorem(
        a in prop::collection::vec(any::<u64>(), 32),
        b in prop::collection::vec(any::<u64>(), 32),
    ) {
        let n = 32usize;
        let p = Modulus::new(generate_ntt_primes(40, 1, n).unwrap()[0]).unwrap();
        let t = NttTable::new(n, p).unwrap();
        let a: Vec<u64> = a.iter().map(|&c| p.reduce_u64(c)).collect();
        let b: Vec<u64> = b.iter().map(|&c| p.reduce_u64(c)).collect();
        let mut expect = vec![0u64; n];
        for i in 0..n {
            for j in 0..n {
                let prod = p.mul_mod(a[i], b[j]);
                if i + j < n {
                    expect[i + j] = p.add_mod(expect[i + j], prod);
                } else {
                    expect[i + j - n] = p.sub_mod(expect[i + j - n], prod);
                }
            }
        }
        let (mut ta, mut tb) = (a, b);
        t.forward(&mut ta);
        t.forward(&mut tb);
        let mut prod: Vec<u64> = ta.iter().zip(&tb).map(|(&x, &y)| p.mul_mod(x, y)).collect();
        t.inverse(&mut prod);
        prop_assert_eq!(prod, expect);
    }

    #[test]
    fn crt_compose_decompose_roundtrip(x in any::<u64>()) {
        let primes = generate_ntt_primes(36, 3, 64).unwrap();
        let basis = RnsBasis::new(&primes).unwrap();
        let residues: Vec<u64> = primes.iter().map(|&p| x % p).collect();
        prop_assert_eq!(basis.compose_u128(&residues), x as u128);
    }

    #[test]
    fn crt_centered_roundtrip(x in any::<i64>()) {
        let primes = generate_ntt_primes(36, 3, 64).unwrap();
        let basis = RnsBasis::new(&primes).unwrap();
        let residues: Vec<u64> = primes
            .iter()
            .map(|&p| (x as i128).rem_euclid(p as i128) as u64)
            .collect();
        prop_assert_eq!(basis.compose_centered_i128(&residues), x as i128);
    }

    #[test]
    fn poly_ring_axioms(
        a in prop::collection::vec(any::<u64>(), 32),
        b in prop::collection::vec(any::<u64>(), 32),
    ) {
        let primes = generate_ntt_primes(30, 2, 32).unwrap();
        let mods: Vec<Modulus> = primes.iter().map(|&p| Modulus::new(p).unwrap()).collect();
        let mk = |v: &[u64]| {
            let mut poly = RnsPoly::zero(32, &mods, Representation::Ntt);
            for (i, m) in mods.iter().enumerate() {
                for (dst, &src) in poly.residue_mut(i).iter_mut().zip(v) {
                    *dst = m.reduce_u64(src);
                }
            }
            poly
        };
        let pa = mk(&a);
        let pb = mk(&b);
        prop_assert_eq!(pa.add(&pb).unwrap(), pb.add(&pa).unwrap());
        prop_assert_eq!(pa.dyadic_mul(&pb).unwrap(), pb.dyadic_mul(&pa).unwrap());
        prop_assert_eq!(pa.sub(&pa).unwrap(), RnsPoly::zero(32, &mods, Representation::Ntt));
        // (a - b) + b == a
        prop_assert_eq!(pa.sub(&pb).unwrap().add(&pb).unwrap(), pa);
    }
}
