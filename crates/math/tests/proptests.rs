//! Property-based tests for the math substrate.

use heax_math::ntt::{bit_reverse, NttTable};
use heax_math::poly::{Representation, RnsPoly};
use heax_math::primes::generate_ntt_primes;
use heax_math::rns::RnsBasis;
use heax_math::word::{Modulus, MulRedConstant};
use proptest::prelude::*;

fn arb_modulus() -> impl Strategy<Value = Modulus> {
    // A spread of real NTT primes of different widths (n = 64 to stay fast).
    prop::sample::select(vec![
        generate_ntt_primes(20, 1, 64).unwrap()[0],
        generate_ntt_primes(30, 1, 64).unwrap()[0],
        generate_ntt_primes(36, 1, 64).unwrap()[0],
        generate_ntt_primes(50, 1, 64).unwrap()[0],
        generate_ntt_primes(60, 1, 64).unwrap()[0],
    ])
    .prop_map(|p| Modulus::new(p).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn barrett_reduce_u64_matches_rem(p in arb_modulus(), x in any::<u64>()) {
        prop_assert_eq!(p.reduce_u64(x), x % p.value());
    }

    #[test]
    fn barrett_reduce_u128_matches_rem(p in arb_modulus(), x in any::<u128>()) {
        // Restrict to the Algorithm 1 input domain [0, (p-1)^2].
        let bound = (p.value() as u128 - 1) * (p.value() as u128 - 1);
        let x = x % (bound + 1);
        prop_assert_eq!(p.reduce_u128(x) as u128, x % p.value() as u128);
    }

    #[test]
    fn mulred_matches_barrett(p in arb_modulus(), x in any::<u64>(), y in any::<u64>()) {
        let x = x % p.value();
        let y = y % p.value();
        let c = MulRedConstant::new(y, &p);
        prop_assert_eq!(c.mul_red(x, &p), p.mul_mod(x, y));
    }

    #[test]
    fn field_laws(p in arb_modulus(), a in any::<u64>(), b in any::<u64>(), c in any::<u64>()) {
        let (a, b, c) = (a % p.value(), b % p.value(), c % p.value());
        // Commutativity and associativity of both operations.
        prop_assert_eq!(p.add_mod(a, b), p.add_mod(b, a));
        prop_assert_eq!(p.mul_mod(a, b), p.mul_mod(b, a));
        prop_assert_eq!(p.add_mod(p.add_mod(a, b), c), p.add_mod(a, p.add_mod(b, c)));
        prop_assert_eq!(p.mul_mod(p.mul_mod(a, b), c), p.mul_mod(a, p.mul_mod(b, c)));
        // Distributivity.
        prop_assert_eq!(
            p.mul_mod(a, p.add_mod(b, c)),
            p.add_mod(p.mul_mod(a, b), p.mul_mod(a, c))
        );
        // Inverses.
        prop_assert_eq!(p.add_mod(a, p.neg_mod(a)), 0);
        if a != 0 {
            prop_assert_eq!(p.mul_mod(a, p.inv_mod(a).unwrap()), 1);
        }
        // Halving.
        prop_assert_eq!(p.add_mod(p.div2_mod(a), p.div2_mod(a)), a);
    }

    #[test]
    fn pow_mod_is_homomorphic(p in arb_modulus(), x in any::<u64>(), e1 in 0u64..1000, e2 in 0u64..1000) {
        let x = x % p.value();
        prop_assert_eq!(
            p.pow_mod(x, e1 + e2),
            p.mul_mod(p.pow_mod(x, e1), p.pow_mod(x, e2))
        );
    }

    #[test]
    fn bit_reverse_is_involution(x in 0usize..(1 << 12), bits in 1u32..13) {
        let x = x & ((1 << bits) - 1);
        prop_assert_eq!(bit_reverse(bit_reverse(x, bits), bits), x);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn ntt_roundtrip(coeffs in prop::collection::vec(any::<u64>(), 64)) {
        let p = Modulus::new(generate_ntt_primes(40, 1, 64).unwrap()[0]).unwrap();
        let t = NttTable::new(64, p).unwrap();
        let mut a: Vec<u64> = coeffs.iter().map(|&c| p.reduce_u64(c)).collect();
        let orig = a.clone();
        t.forward(&mut a);
        t.inverse(&mut a);
        prop_assert_eq!(a, orig);
    }

    #[test]
    fn ntt_is_linear(
        a in prop::collection::vec(any::<u64>(), 64),
        b in prop::collection::vec(any::<u64>(), 64),
        s in any::<u64>(),
    ) {
        let p = Modulus::new(generate_ntt_primes(40, 1, 64).unwrap()[0]).unwrap();
        let t = NttTable::new(64, p).unwrap();
        let s = s % p.value();
        let a: Vec<u64> = a.iter().map(|&c| p.reduce_u64(c)).collect();
        let b: Vec<u64> = b.iter().map(|&c| p.reduce_u64(c)).collect();
        // NTT(s·a + b) == s·NTT(a) + NTT(b)
        let mut combo: Vec<u64> = a.iter().zip(&b)
            .map(|(&x, &y)| p.add_mod(p.mul_mod(s, x), y)).collect();
        let (mut ta, mut tb) = (a, b);
        t.forward(&mut combo);
        t.forward(&mut ta);
        t.forward(&mut tb);
        for i in 0..64 {
            prop_assert_eq!(combo[i], p.add_mod(p.mul_mod(s, ta[i]), tb[i]));
        }
    }

    #[test]
    fn convolution_theorem(
        a in prop::collection::vec(any::<u64>(), 32),
        b in prop::collection::vec(any::<u64>(), 32),
    ) {
        let n = 32usize;
        let p = Modulus::new(generate_ntt_primes(40, 1, n).unwrap()[0]).unwrap();
        let t = NttTable::new(n, p).unwrap();
        let a: Vec<u64> = a.iter().map(|&c| p.reduce_u64(c)).collect();
        let b: Vec<u64> = b.iter().map(|&c| p.reduce_u64(c)).collect();
        let mut expect = vec![0u64; n];
        for i in 0..n {
            for j in 0..n {
                let prod = p.mul_mod(a[i], b[j]);
                if i + j < n {
                    expect[i + j] = p.add_mod(expect[i + j], prod);
                } else {
                    expect[i + j - n] = p.sub_mod(expect[i + j - n], prod);
                }
            }
        }
        let (mut ta, mut tb) = (a, b);
        t.forward(&mut ta);
        t.forward(&mut tb);
        let mut prod: Vec<u64> = ta.iter().zip(&tb).map(|(&x, &y)| p.mul_mod(x, y)).collect();
        t.inverse(&mut prod);
        prop_assert_eq!(prod, expect);
    }

    #[test]
    fn crt_compose_decompose_roundtrip(x in any::<u64>()) {
        let primes = generate_ntt_primes(36, 3, 64).unwrap();
        let basis = RnsBasis::new(&primes).unwrap();
        let residues: Vec<u64> = primes.iter().map(|&p| x % p).collect();
        prop_assert_eq!(basis.compose_u128(&residues), x as u128);
    }

    #[test]
    fn crt_centered_roundtrip(x in any::<i64>()) {
        let primes = generate_ntt_primes(36, 3, 64).unwrap();
        let basis = RnsBasis::new(&primes).unwrap();
        let residues: Vec<u64> = primes
            .iter()
            .map(|&p| (x as i128).rem_euclid(p as i128) as u64)
            .collect();
        prop_assert_eq!(basis.compose_centered_i128(&residues), x as i128);
    }

    #[test]
    fn poly_ring_axioms(
        a in prop::collection::vec(any::<u64>(), 32),
        b in prop::collection::vec(any::<u64>(), 32),
    ) {
        let primes = generate_ntt_primes(30, 2, 32).unwrap();
        let mods: Vec<Modulus> = primes.iter().map(|&p| Modulus::new(p).unwrap()).collect();
        let mk = |v: &[u64]| {
            let mut poly = RnsPoly::zero(32, &mods, Representation::Ntt);
            for (i, m) in mods.iter().enumerate() {
                for (dst, &src) in poly.residue_mut(i).iter_mut().zip(v) {
                    *dst = m.reduce_u64(src);
                }
            }
            poly
        };
        let pa = mk(&a);
        let pb = mk(&b);
        prop_assert_eq!(pa.add(&pb).unwrap(), pb.add(&pa).unwrap());
        prop_assert_eq!(pa.dyadic_mul(&pb).unwrap(), pb.dyadic_mul(&pa).unwrap());
        prop_assert_eq!(pa.sub(&pa).unwrap(), RnsPoly::zero(32, &mods, Representation::Ntt));
        // (a - b) + b == a
        prop_assert_eq!(pa.sub(&pb).unwrap().add(&pb).unwrap(), pa);
    }
}

/// Equivalence of the execution backends: `ThreadPool(k)` must be
/// bit-identical to `Sequential` for every parallel hot path. Lane counts
/// cover the degenerate pool (k = 1), one worker (k = 2), and more lanes
/// than the host has cores (k = 4 on single-core CI shards).
mod backend_equivalence {
    use super::*;
    use heax_math::exec::{self, Sequential, ThreadPool};
    use heax_math::ntt::NttTable;

    fn pool_lanes() -> impl Strategy<Value = usize> {
        prop::sample::select(vec![1usize, 2, 4])
    }

    fn rns_poly(seed: u64, n: usize, mods: &[Modulus], repr: Representation) -> RnsPoly {
        let mut poly = RnsPoly::zero(n, mods, repr);
        for (i, m) in mods.iter().enumerate() {
            for (j, c) in poly.residue_mut(i).iter_mut().enumerate() {
                *c = (seed
                    .wrapping_mul(0x9e3779b97f4a7c15)
                    .wrapping_add(((i * n + j) as u64).wrapping_mul(0x2545_f491_4f6c_dd1d)))
                    % m.value();
            }
        }
        poly
    }

    fn moduli_and_tables(n: usize) -> (Vec<Modulus>, Vec<NttTable>) {
        let mut primes = generate_ntt_primes(30, 2, n).unwrap();
        primes.extend(generate_ntt_primes(36, 1, n).unwrap());
        let mods: Vec<Modulus> = primes.iter().map(|&p| Modulus::new(p).unwrap()).collect();
        let tables = mods.iter().map(|&m| NttTable::new(n, m).unwrap()).collect();
        (mods, tables)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ntt_roundtrip_pool_matches_sequential(seed in any::<u64>(), k in pool_lanes()) {
            let n = 128usize;
            let (mods, tables) = moduli_and_tables(n);
            let pool = ThreadPool::new(k);
            let original = rns_poly(seed, n, &mods, Representation::Coefficient);

            let mut seq = original.clone();
            seq.ntt_forward_with(&tables, &Sequential).unwrap();
            let mut par = original.clone();
            par.ntt_forward_with(&tables, &pool).unwrap();
            prop_assert_eq!(&seq, &par, "forward NTT diverged at k={}", k);

            seq.ntt_inverse_with(&tables, &Sequential).unwrap();
            par.ntt_inverse_with(&tables, &pool).unwrap();
            prop_assert_eq!(&seq, &par, "inverse NTT diverged at k={}", k);
            prop_assert_eq!(&seq, &original, "round-trip is not the identity");
        }

        #[test]
        fn dyadic_ops_pool_match_sequential(seed in any::<u64>(), k in pool_lanes()) {
            let n = 64usize;
            let (mods, _) = moduli_and_tables(n);
            let pool = ThreadPool::new(k);
            let a = rns_poly(seed, n, &mods, Representation::Ntt);
            let b = rns_poly(seed ^ 0xdead_beef, n, &mods, Representation::Ntt);

            let mut seq = a.clone();
            seq.dyadic_mul_assign_with(&b, &Sequential).unwrap();
            let mut par = a.clone();
            par.dyadic_mul_assign_with(&b, &pool).unwrap();
            prop_assert_eq!(&seq, &par, "dyadic mul diverged at k={}", k);

            let mut acc_seq = RnsPoly::zero(n, &mods, Representation::Ntt);
            acc_seq.dyadic_mul_acc_with(&a, &b, &Sequential).unwrap();
            acc_seq.dyadic_mul_acc_with(&b, &a, &Sequential).unwrap();
            let mut acc_par = RnsPoly::zero(n, &mods, Representation::Ntt);
            acc_par.dyadic_mul_acc_with(&a, &b, &pool).unwrap();
            acc_par.dyadic_mul_acc_with(&b, &a, &pool).unwrap();
            prop_assert_eq!(&acc_seq, &acc_par, "dyadic mul-acc diverged at k={}", k);

            prop_assert_eq!(
                a.add(&b).unwrap(),
                {
                    let mut s = a.clone();
                    s.add_assign_with(&b, &pool).unwrap();
                    s
                },
                "add diverged at k={}", k
            );
            prop_assert_eq!(
                a.sub(&b).unwrap(),
                a.sub_with(&b, &pool).unwrap(),
                "sub diverged at k={}", k
            );
        }

        #[test]
        fn limb_batch_helpers_pool_match_sequential(seed in any::<u64>(), k in pool_lanes()) {
            // forward_limbs/inverse_limbs (the batch dispatchers under
            // RnsPoly) seen directly, over raw limb data.
            let n = 64usize;
            let (mods, tables) = moduli_and_tables(n);
            let pool = ThreadPool::new(k);
            let poly = rns_poly(seed, n, &mods, Representation::Coefficient);
            let mut seq = poly.data().to_vec();
            let mut par = seq.clone();
            heax_math::ntt::forward_limbs(&Sequential, &tables, &mut seq, n);
            heax_math::ntt::forward_limbs(&pool, &tables, &mut par, n);
            prop_assert_eq!(&seq, &par);
            heax_math::ntt::inverse_limbs(&Sequential, &tables, &mut seq, n);
            heax_math::ntt::inverse_limbs(&pool, &tables, &mut par, n);
            prop_assert_eq!(&seq, &par);
            prop_assert_eq!(&seq, &poly.data().to_vec());
        }
    }

    #[test]
    fn global_executor_honors_env_contract() {
        // The global backend is read from HEAX_THREADS once; in the test
        // process it is unset (or whatever the harness sets), so just
        // assert the contract between env_threads() and the executor.
        assert_eq!(exec::global().threads(), exec::env_threads());
    }
}
