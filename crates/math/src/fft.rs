//! Complex arithmetic and the CKKS "special FFT" over the `2n`-th roots of
//! unity used by the encoder (client-side canonical embedding).
//!
//! CKKS packs `n/2` complex slots into one plaintext. The embedding
//! evaluates the plaintext polynomial at the primitive `2n`-th roots of
//! unity `ζ^{5^j}` (`ζ = e^{iπ/n}`), ordered by powers of the rotation
//! generator `5` so that slot rotation corresponds to the Galois
//! automorphism `X ↦ X^{5^r}`. This is the HEAAN/SEAL layout; the
//! server-side accelerator never touches it (encoding is explicitly a
//! client-side operation in the paper), but the library needs it to verify
//! end-to-end correctness.

use core::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

use crate::ntt::bit_reverse_permute;
use crate::MathError;

/// A complex number with `f64` components.
///
/// Self-contained so the crate has no numeric dependencies.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex64 {
    /// Creates a complex number.
    #[inline]
    pub fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// `e^{iθ}`.
    #[inline]
    pub fn from_angle(theta: f64) -> Self {
        Self::new(theta.cos(), theta.sin())
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Self::new(self.re, -self.im)
    }

    /// Magnitude `|z|`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }
}

impl Add for Complex64 {
    type Output = Self;
    #[inline]
    fn add(self, o: Self) -> Self {
        Self::new(self.re + o.re, self.im + o.im)
    }
}

impl AddAssign for Complex64 {
    #[inline]
    fn add_assign(&mut self, o: Self) {
        *self = *self + o;
    }
}

impl Sub for Complex64 {
    type Output = Self;
    #[inline]
    fn sub(self, o: Self) -> Self {
        Self::new(self.re - o.re, self.im - o.im)
    }
}

impl SubAssign for Complex64 {
    #[inline]
    fn sub_assign(&mut self, o: Self) {
        *self = *self - o;
    }
}

impl Mul for Complex64 {
    type Output = Self;
    #[inline]
    fn mul(self, o: Self) -> Self {
        Self::new(
            self.re * o.re - self.im * o.im,
            self.re * o.im + self.im * o.re,
        )
    }
}

impl MulAssign for Complex64 {
    #[inline]
    fn mul_assign(&mut self, o: Self) {
        *self = *self * o;
    }
}

impl Mul<f64> for Complex64 {
    type Output = Self;
    #[inline]
    fn mul(self, s: f64) -> Self {
        Self::new(self.re * s, self.im * s)
    }
}

impl Div<f64> for Complex64 {
    type Output = Self;
    #[inline]
    fn div(self, s: f64) -> Self {
        Self::new(self.re / s, self.im / s)
    }
}

impl Neg for Complex64 {
    type Output = Self;
    #[inline]
    fn neg(self) -> Self {
        Self::new(-self.re, -self.im)
    }
}

/// Precomputed tables for the special FFT of size `slots = n/2` over the
/// `2n`-th complex roots of unity.
///
/// # Examples
///
/// ```
/// use heax_math::fft::{Complex64, SpecialFft};
///
/// # fn main() -> Result<(), heax_math::MathError> {
/// let fft = SpecialFft::new(8)?; // 8 slots (ring degree 16)
/// let mut v: Vec<Complex64> = (0..8).map(|i| Complex64::new(i as f64, 0.0)).collect();
/// let orig = v.clone();
/// fft.embed_inverse(&mut v);
/// fft.embed_forward(&mut v);
/// for (a, b) in v.iter().zip(&orig) {
///     assert!((*a - *b).abs() < 1e-9);
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct SpecialFft {
    slots: usize,
    /// Cyclotomic index `m = 2n = 4·slots`.
    m: usize,
    /// `roots[j] = e^{2πi·j/m}` for `j ∈ [0, m)`.
    roots: Vec<Complex64>,
    /// `rot_group[j] = 5^j mod m` for `j ∈ [0, slots)`.
    rot_group: Vec<usize>,
}

impl SpecialFft {
    /// Builds tables for `slots` complex slots (ring degree `n = 2·slots`).
    ///
    /// # Errors
    ///
    /// Returns [`MathError::InvalidDegree`] unless `slots` is a power of two.
    pub fn new(slots: usize) -> Result<Self, MathError> {
        if !slots.is_power_of_two() || slots < 1 {
            return Err(MathError::InvalidDegree { n: slots });
        }
        let m = 4 * slots;
        let roots: Vec<Complex64> = (0..m)
            .map(|j| Complex64::from_angle(2.0 * core::f64::consts::PI * j as f64 / m as f64))
            .collect();
        let mut rot_group = Vec::with_capacity(slots);
        let mut five = 1usize;
        for _ in 0..slots {
            rot_group.push(five);
            five = (five * 5) % m;
        }
        Ok(Self {
            slots,
            m,
            roots,
            rot_group,
        })
    }

    /// Number of slots.
    #[inline]
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// The rotation group `5^j mod 2n` (used to derive Galois elements).
    #[inline]
    pub fn rot_group(&self) -> &[usize] {
        &self.rot_group
    }

    /// Forward special FFT (decode direction): from "coefficient-like"
    /// values to slot values.
    ///
    /// # Panics
    ///
    /// Panics if `vals.len() != slots`.
    pub fn embed_forward(&self, vals: &mut [Complex64]) {
        assert_eq!(vals.len(), self.slots, "slot count mismatch");
        bit_reverse_permute(vals);
        let mut len = 2usize;
        while len <= self.slots {
            let lenh = len >> 1;
            let lenq = len << 2;
            let gap = self.m / lenq;
            let mut i = 0usize;
            while i < self.slots {
                for j in 0..lenh {
                    let idx = (self.rot_group[j] % lenq) * gap;
                    let u = vals[i + j];
                    let v = vals[i + j + lenh] * self.roots[idx];
                    vals[i + j] = u + v;
                    vals[i + j + lenh] = u - v;
                }
                i += len;
            }
            len <<= 1;
        }
    }

    /// Inverse special FFT (encode direction): from slot values to
    /// "coefficient-like" values, including the `1/slots` scaling.
    ///
    /// # Panics
    ///
    /// Panics if `vals.len() != slots`.
    pub fn embed_inverse(&self, vals: &mut [Complex64]) {
        assert_eq!(vals.len(), self.slots, "slot count mismatch");
        let mut len = self.slots;
        while len >= 2 {
            let lenh = len >> 1;
            let lenq = len << 2;
            let gap = self.m / lenq;
            let mut i = 0usize;
            while i < self.slots {
                for j in 0..lenh {
                    let idx = (lenq - (self.rot_group[j] % lenq)) * gap;
                    let u = vals[i + j] + vals[i + j + lenh];
                    let v = (vals[i + j] - vals[i + j + lenh]) * self.roots[idx];
                    vals[i + j] = u;
                    vals[i + j + lenh] = v;
                }
                i += len;
            }
            len >>= 1;
        }
        bit_reverse_permute(vals);
        let s = 1.0 / self.slots as f64;
        for v in vals {
            *v = *v * s;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complex_field_laws() {
        let a = Complex64::new(1.5, -2.0);
        let b = Complex64::new(-0.25, 3.0);
        let c = Complex64::new(2.0, 2.0);
        let left = (a + b) * c;
        let right = a * c + b * c;
        assert!((left - right).abs() < 1e-12);
        assert!((a * b - b * a).abs() < 1e-12);
        assert!(((a - a).abs()) < 1e-15);
        assert!((a.conj().conj() - a).abs() < 1e-15);
        assert!(((-a) + a).abs() < 1e-15);
    }

    #[test]
    fn fft_roundtrip_various_sizes() {
        for slots in [1usize, 2, 4, 64, 2048] {
            let fft = SpecialFft::new(slots).unwrap();
            let mut v: Vec<Complex64> = (0..slots)
                .map(|i| Complex64::new((i as f64).sin(), (i as f64 * 0.7).cos()))
                .collect();
            let orig = v.clone();
            fft.embed_inverse(&mut v);
            fft.embed_forward(&mut v);
            for (a, b) in v.iter().zip(&orig) {
                assert!((*a - *b).abs() < 1e-8, "slots={slots}");
            }
        }
    }

    #[test]
    fn inverse_then_forward_is_identity_too() {
        let slots = 32;
        let fft = SpecialFft::new(slots).unwrap();
        let mut v: Vec<Complex64> = (0..slots)
            .map(|i| Complex64::new(i as f64 - 3.0, 0.5 * i as f64))
            .collect();
        let orig = v.clone();
        fft.embed_forward(&mut v);
        fft.embed_inverse(&mut v);
        for (a, b) in v.iter().zip(&orig) {
            assert!((*a - *b).abs() < 1e-8);
        }
    }

    #[test]
    fn rejects_non_power_of_two() {
        assert!(SpecialFft::new(3).is_err());
        assert!(SpecialFft::new(0).is_err());
    }

    #[test]
    fn rot_group_is_powers_of_five() {
        let fft = SpecialFft::new(8).unwrap();
        assert_eq!(fft.rot_group()[0], 1);
        assert_eq!(fft.rot_group()[1], 5);
        assert_eq!(fft.rot_group()[2], 25); // 5² mod 32
    }
}
