//! # heax-math
//!
//! Word-level and polynomial-level arithmetic substrate for the HEAX
//! (ASPLOS 2020) reproduction: Barrett reduction (Algorithm 1), the
//! `MulRed` optimized modular multiplication (Algorithm 2), negacyclic
//! NTT/INTT (Algorithms 3–4), NTT-friendly prime generation, RNS tools
//! (Garner composition, key-switching gadget, flooring constants), the
//! complex "special FFT" backing the CKKS encoder, and RLWE samplers.
//!
//! Everything here is deliberately dependency-light (`rand` only) and
//! mirrors, in software, exactly the primitives the HEAX datapaths consume;
//! `heax-hw` re-uses these tables to drive cycle-accurate simulations whose
//! outputs are checked bit-exactly against this crate.
//!
//! ## Example
//!
//! ```
//! use heax_math::{ntt::NttTable, primes, word::Modulus};
//!
//! # fn main() -> Result<(), heax_math::MathError> {
//! let p = primes::generate_ntt_primes(36, 1, 4096)?[0];
//! let table = NttTable::new(4096, Modulus::new(p)?)?;
//! let mut poly = vec![1u64; 4096];
//! table.forward(&mut poly);
//! table.inverse(&mut poly);
//! assert!(poly.iter().all(|&c| c == 1)); // round-trip is the identity
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod exec;
pub mod fft;
pub mod ntt;
pub mod poly;
pub mod primes;
pub mod rns;
pub mod sampling;
pub mod word;

use core::fmt;

/// Errors produced by the math substrate.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum MathError {
    /// The modulus is zero, one, even, or too wide for Algorithm 2.
    InvalidModulus {
        /// Offending value.
        value: u64,
    },
    /// The ring degree is not a supported power of two.
    InvalidDegree {
        /// Offending degree.
        n: usize,
    },
    /// The prime search ran out of candidates below `2^bits`.
    PrimeSearchExhausted {
        /// Requested bit size.
        bits: u32,
        /// Requested count.
        count: usize,
        /// Ring degree constraining the congruence.
        n: usize,
    },
    /// No primitive `2n`-th root of unity exists modulo the given modulus.
    NoPrimitiveRoot {
        /// The modulus.
        modulus: u64,
        /// Ring degree.
        n: usize,
    },
    /// Attempted to invert a non-invertible element.
    NotInvertible {
        /// The element.
        value: u64,
        /// The modulus.
        modulus: u64,
    },
    /// Two moduli that must be coprime are not.
    NotCoprime {
        /// First value.
        a: u64,
        /// Second value.
        b: u64,
    },
    /// An RNS basis must contain at least one modulus.
    EmptyBasis,
    /// Operand sizes disagree.
    LengthMismatch {
        /// Expected length.
        expected: usize,
        /// Actual length.
        got: usize,
    },
    /// Operands live in different RNS bases.
    BasisMismatch {
        /// Modulus from the left operand.
        a: u64,
        /// Modulus from the right operand.
        b: u64,
    },
    /// Operands are in different (or unexpected) representations.
    RepresentationMismatch,
}

impl fmt::Display for MathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidModulus { value } => {
                write!(
                    f,
                    "invalid modulus {value}: must be odd, >2, and at most 62 bits"
                )
            }
            Self::InvalidDegree { n } => {
                write!(f, "invalid ring degree {n}: must be a power of two")
            }
            Self::PrimeSearchExhausted { bits, count, n } => write!(
                f,
                "could not find {count} primes of {bits} bits congruent to 1 mod {}",
                2 * n
            ),
            Self::NoPrimitiveRoot { modulus, n } => write!(
                f,
                "no primitive {}-th root of unity modulo {modulus}",
                2 * n
            ),
            Self::NotInvertible { value, modulus } => {
                write!(f, "{value} is not invertible modulo {modulus}")
            }
            Self::NotCoprime { a, b } => write!(f, "moduli {a} and {b} are not coprime"),
            Self::EmptyBasis => write!(f, "RNS basis must be non-empty"),
            Self::LengthMismatch { expected, got } => {
                write!(f, "length mismatch: expected {expected}, got {got}")
            }
            Self::BasisMismatch { a, b } => {
                write!(f, "RNS basis mismatch: {a} vs {b}")
            }
            Self::RepresentationMismatch => {
                write!(f, "operands are in incompatible representations")
            }
        }
    }
}

impl std::error::Error for MathError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_and_are_send_sync() {
        fn assert_traits<T: std::error::Error + Send + Sync + 'static>() {}
        assert_traits::<MathError>();
        let e = MathError::NotCoprime { a: 6, b: 9 };
        assert!(e.to_string().contains("not coprime"));
        assert!(!format!("{e:?}").is_empty());
    }
}
