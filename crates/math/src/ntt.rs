//! Negacyclic Number-Theoretic Transform (Algorithms 3 and 4).
//!
//! The forward transform is the decimation-in-time Cooley–Tukey network of
//! Algorithm 3 (natural input order, bit-reversed output order); the inverse
//! is the Gentleman–Sande network of Algorithm 4 (bit-reversed input,
//! natural output) with the `1/n` scaling folded into the butterflies as the
//! paper does: the inverse twiddle table stores `ψ^{-brv(t)}/2` and the sum
//! path halves explicitly, so each of the `log n` stages contributes a
//! factor `1/2`.
//!
//! All twiddle factors are stored as [`MulRedConstant`]s so every butterfly
//! uses Algorithm 2 (`MulRed`), exactly as in the hardware NTT core
//! (Figure 3 of the paper).

use crate::exec::{self, Executor};
use crate::primes::primitive_root_2n;
use crate::word::{Modulus, MulRedConstant};
use crate::MathError;

/// Reverses the lowest `bits` bits of `x`.
#[inline]
pub fn bit_reverse(x: usize, bits: u32) -> usize {
    if bits == 0 {
        return 0;
    }
    x.reverse_bits() >> (usize::BITS - bits)
}

/// Permutes a slice into bit-reversed order in place.
pub fn bit_reverse_permute<T>(data: &mut [T]) {
    let n = data.len();
    debug_assert!(n.is_power_of_two());
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = bit_reverse(i, bits);
        if i < j {
            data.swap(i, j);
        }
    }
}

/// Precomputed twiddle tables for one `(n, p)` pair.
///
/// # Examples
///
/// ```
/// use heax_math::{ntt::NttTable, word::Modulus};
///
/// # fn main() -> Result<(), heax_math::MathError> {
/// let p = Modulus::new(0x0fff_ee001)?; // 36-bit prime ≡ 1 mod 8192... (doc only)
/// # let p = Modulus::new(heax_math::primes::generate_ntt_primes(36, 1, 4096)?[0])?;
/// let table = NttTable::new(4096, p)?;
/// let mut a: Vec<u64> = (0..4096u64).collect();
/// let orig = a.clone();
/// table.forward(&mut a);
/// table.inverse(&mut a);
/// assert_eq!(a, orig);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct NttTable {
    n: usize,
    log_n: u32,
    modulus: Modulus,
    /// ψ, a primitive 2n-th root of unity mod p.
    root: u64,
    /// Forward table: `fwd[t] = ψ^{brv(t)}` for `t ∈ [0, n)`.
    fwd: Vec<MulRedConstant>,
    /// Inverse table: `inv[t] = ψ^{-brv(t)} · 2^{-1}` (the paper's
    /// "powers of ψ⁻¹ divided by 2 in bit-reverse order").
    inv: Vec<MulRedConstant>,
    /// Unscaled inverse table `ψ^{-brv(t)}` for the lazy kernel (which
    /// merges the `1/n` into a final pass instead of halving per stage).
    inv_plain: Vec<MulRedConstant>,
    /// `n^{-1} mod p`, exposed for callers that need explicit scaling.
    inv_n: u64,
    /// `n^{-1}` as a MulRed constant for the lazy kernel's final pass.
    inv_n_const: MulRedConstant,
}

impl NttTable {
    /// Builds twiddle tables for ring degree `n` (a power of two ≥ 2) and
    /// modulus `p ≡ 1 (mod 2n)`.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::InvalidDegree`] for a non-power-of-two `n` and
    /// [`MathError::NoPrimitiveRoot`] when `p ≢ 1 (mod 2n)`.
    pub fn new(n: usize, modulus: Modulus) -> Result<Self, MathError> {
        if !n.is_power_of_two() || n < 2 {
            return Err(MathError::InvalidDegree { n });
        }
        let root = primitive_root_2n(&modulus, n)?;
        Self::with_root(n, modulus, root)
    }

    /// Builds tables with an explicit primitive `2n`-th root `ψ`.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::NoPrimitiveRoot`] if `ψ^n ≠ -1 (mod p)`.
    pub fn with_root(n: usize, modulus: Modulus, root: u64) -> Result<Self, MathError> {
        if !n.is_power_of_two() || n < 2 {
            return Err(MathError::InvalidDegree { n });
        }
        if modulus.pow_mod(root, n as u64) != modulus.value() - 1 {
            return Err(MathError::NoPrimitiveRoot {
                modulus: modulus.value(),
                n,
            });
        }
        let log_n = n.trailing_zeros();
        let inv_root = modulus.inv_mod(root).expect("root invertible");
        let inv_two = modulus.inv_two();

        // Powers in natural order first, then scatter bit-reversed.
        let mut fwd = vec![MulRedConstant::new(1, &modulus); n];
        let mut inv = vec![MulRedConstant::new(inv_two, &modulus); n];
        let mut inv_plain = vec![MulRedConstant::new(1, &modulus); n];
        let mut power = 1u64;
        let mut inv_power = 1u64;
        for t in 0..n {
            let r = bit_reverse(t, log_n);
            fwd[r] = MulRedConstant::new(power, &modulus);
            inv[r] = MulRedConstant::new(modulus.mul_mod(inv_power, inv_two), &modulus);
            inv_plain[r] = MulRedConstant::new(inv_power, &modulus);
            power = modulus.mul_mod(power, root);
            inv_power = modulus.mul_mod(inv_power, inv_root);
        }
        let inv_n = modulus
            .inv_mod(modulus.reduce_u64(n as u64))
            .expect("n invertible");
        let inv_n_const = MulRedConstant::new(inv_n, &modulus);
        Ok(Self {
            n,
            log_n,
            modulus,
            root,
            fwd,
            inv,
            inv_plain,
            inv_n,
            inv_n_const,
        })
    }

    /// Ring degree `n`.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// `log₂ n`.
    #[inline]
    pub fn log_n(&self) -> u32 {
        self.log_n
    }

    /// The modulus.
    #[inline]
    pub fn modulus(&self) -> &Modulus {
        &self.modulus
    }

    /// The primitive `2n`-th root ψ used by this table.
    #[inline]
    pub fn root(&self) -> u64 {
        self.root
    }

    /// `n^{-1} mod p`.
    #[inline]
    pub fn inv_n(&self) -> u64 {
        self.inv_n
    }

    /// Forward twiddle `ψ^{brv(t)}` as a [`MulRedConstant`].
    #[inline]
    pub fn forward_twiddle(&self, t: usize) -> &MulRedConstant {
        &self.fwd[t]
    }

    /// Inverse twiddle `ψ^{-brv(t)}·2^{-1}` as a [`MulRedConstant`].
    #[inline]
    pub fn inverse_twiddle(&self, t: usize) -> &MulRedConstant {
        &self.inv[t]
    }

    /// Algorithm 3: in-place forward negacyclic NTT.
    ///
    /// Input in natural coefficient order; output in bit-reversed
    /// "NTT form" (the form SEAL and the paper keep ciphertexts in).
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != n`.
    pub fn forward(&self, a: &mut [u64]) {
        assert_eq!(a.len(), self.n, "polynomial length must equal n");
        let p = &self.modulus;
        let n = self.n;
        let mut m = 1usize;
        while m < n {
            let t = n / (2 * m); // butterfly half-gap at this stage
            for i in 0..m {
                let w = &self.fwd[m + i];
                let base = 2 * i * t;
                for j in base..base + t {
                    // v = MulRed(a[j+t], y_{m+i})       (Alg. 3, line 4)
                    let v = w.mul_red(a[j + t], p);
                    // a[j+t] = a[j] - v; a[j] = a[j] + v (lines 5-6)
                    a[j + t] = p.sub_mod(a[j], v);
                    a[j] = p.add_mod(a[j], v);
                }
            }
            m *= 2;
        }
    }

    /// Algorithm 4: in-place inverse negacyclic NTT.
    ///
    /// Input in bit-reversed NTT form; output in natural coefficient order,
    /// already scaled by `n^{-1}` (the scaling is folded into the twiddles).
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != n`.
    pub fn inverse(&self, a: &mut [u64]) {
        assert_eq!(a.len(), self.n, "polynomial length must equal n");
        let p = &self.modulus;
        let n = self.n;
        let mut m = n / 2;
        while m >= 1 {
            let t = n / (2 * m);
            for i in 0..m {
                let w = &self.inv[m + i]; // ψ^{-brv(m+i)}/2
                let base = 2 * i * t;
                for j in base..base + t {
                    // v = a[j] - a[j+t]                  (Alg. 4, line 4)
                    let v = p.sub_mod(a[j], a[j + t]);
                    // a[j] = (a[j] + a[j+t]) / 2         (line 5)
                    a[j] = p.div2_mod(p.add_mod(a[j], a[j + t]));
                    // a[j+t] = MulRed(v, y_{m+i})        (line 6)
                    a[j + t] = w.mul_red(v, p);
                }
            }
            m /= 2;
        }
    }

    /// Inverse NTT choosing the fastest applicable kernel (lazy when the
    /// modulus is at most 60 bits). Output is bit-identical to
    /// [`NttTable::inverse`].
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != n`.
    #[inline]
    pub fn inverse_auto(&self, a: &mut [u64]) {
        if self.modulus.bits() <= 60 {
            self.inverse_lazy(a); // DOMAIN: [0,2p)
        } else {
            self.inverse(a);
        }
    }

    /// Lazy-reduction inverse NTT: plain Gentleman–Sande butterflies in
    /// the `[0, 2p)` domain with the `1/n` scaling merged into a final
    /// normalization pass (the SEAL kernel structure), instead of the
    /// per-stage halving of Algorithm 4. Bit-identical output.
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != n` or the modulus exceeds 60 bits.
    // DOMAIN: [0,2p)
    pub fn inverse_lazy(&self, a: &mut [u64]) {
        assert_eq!(a.len(), self.n, "polynomial length must equal n");
        assert!(self.modulus.bits() <= 60, "lazy NTT requires p < 2^60");
        let p = &self.modulus;
        let two_p = 2 * p.value();
        let n = self.n;
        let mut m = n / 2;
        while m >= 1 {
            let t = n / (2 * m);
            for i in 0..m {
                let w = &self.inv_plain[m + i];
                let base = 2 * i * t;
                for j in base..base + t {
                    let x = a[j]; // < 2p
                    let y = a[j + t]; // < 2p
                    let mut u = x + y;
                    if u >= two_p {
                        u -= two_p;
                    }
                    a[j] = u;
                    // (x − y)·w, computed lazily from x − y + 2p < 4p.
                    a[j + t] = w.mul_red_lazy(x + two_p - y, p); // DOMAIN: [0,2p)
                }
            }
            m /= 2;
        }
        // Merge the n^{-1} scaling with full normalization.
        for c in a.iter_mut() {
            *c = self.inv_n_const.mul_red(*c, p);
        }
    }

    /// Forward NTT choosing the fastest applicable kernel: the lazy
    /// Harvey variant when the modulus is at most 60 bits, the strict
    /// Algorithm 3 otherwise. Output is bit-identical either way.
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != n`.
    #[inline]
    pub fn forward_auto(&self, a: &mut [u64]) {
        if self.modulus.bits() <= 60 {
            self.forward_lazy(a); // DOMAIN: [0,4p)
        } else {
            self.forward(a);
        }
    }

    /// Lazy-reduction forward NTT (Harvey-style, as in SEAL's CPU
    /// kernels): intermediate values stay in `[0, 4p)` and only the final
    /// pass normalizes to `[0, p)`, trading two conditional subtractions
    /// per butterfly for one lazy comparison. Bit-identical output to
    /// [`NttTable::forward`]; used by the CPU-baseline ablation bench.
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != n` or the modulus exceeds 60 bits (the lazy
    /// domain needs `4p < 2^64` with headroom for the additions).
    // DOMAIN: [0,4p)
    pub fn forward_lazy(&self, a: &mut [u64]) {
        assert_eq!(a.len(), self.n, "polynomial length must equal n");
        assert!(self.modulus.bits() <= 60, "lazy NTT requires p < 2^60");
        let p = &self.modulus;
        let two_p = 2 * p.value();
        let n = self.n;
        let mut m = 1usize;
        while m < n {
            let t = n / (2 * m);
            for i in 0..m {
                let w = &self.fwd[m + i];
                let base = 2 * i * t;
                for j in base..base + t {
                    // Inputs in [0, 4p): bring x below 2p, keep y lazy.
                    let mut x = a[j];
                    if x >= two_p {
                        x -= two_p;
                    }
                    // v = w·y in [0, 2p) without the final correction.
                    let v = w.mul_red_lazy(a[j + t], p); // DOMAIN: [0,2p)
                    a[j] = x + v; // < 4p
                    a[j + t] = x + two_p - v; // < 4p
                }
            }
            m *= 2;
        }
        // Final normalization to [0, p).
        let pv = p.value();
        for c in a.iter_mut() {
            if *c >= two_p {
                *c -= two_p;
            }
            if *c >= pv {
                *c -= pv;
            }
        }
    }

    /// Forward-transforms **two** residues under the same modulus with
    /// interleaved butterflies, choosing the fastest applicable kernel.
    /// Bit-identical to two [`NttTable::forward_auto`] calls; the
    /// interleaving gives the out-of-order core two independent
    /// multiply chains to overlap (~1.2× on the scalar path), which is
    /// what makes the paired key-switch accumulator floor cheap.
    ///
    /// # Panics
    ///
    /// Panics if either slice length differs from `n`.
    #[inline]
    // DOMAIN: [0,4p)
    pub fn forward_auto2(&self, a: &mut [u64], b: &mut [u64]) {
        if self.modulus.bits() <= 60 {
            self.forward_lazy2(a, b); // DOMAIN: [0,4p)
        } else {
            self.forward(a);
            self.forward(b);
        }
    }

    /// Lazy-reduction forward NTT of two residues with interleaved
    /// butterflies (see [`NttTable::forward_auto2`]).
    ///
    /// # Panics
    ///
    /// Panics if a slice length differs from `n` or the modulus exceeds
    /// 60 bits.
    // DOMAIN: [0,4p)
    pub fn forward_lazy2(&self, a: &mut [u64], b: &mut [u64]) {
        assert_eq!(a.len(), self.n, "polynomial length must equal n");
        assert_eq!(b.len(), self.n, "polynomial length must equal n");
        assert!(self.modulus.bits() <= 60, "lazy NTT requires p < 2^60");
        let p = &self.modulus;
        let two_p = 2 * p.value();
        let n = self.n;
        let mut m = 1usize;
        while m < n {
            let t = n / (2 * m);
            for i in 0..m {
                let w = &self.fwd[m + i];
                let base = 2 * i * t;
                for j in base..base + t {
                    let mut x = a[j];
                    if x >= two_p {
                        x -= two_p;
                    }
                    let v = w.mul_red_lazy(a[j + t], p); // DOMAIN: [0,2p)
                    a[j] = x + v;
                    a[j + t] = x + two_p - v;

                    let mut y = b[j];
                    if y >= two_p {
                        y -= two_p;
                    }
                    let u = w.mul_red_lazy(b[j + t], p); // DOMAIN: [0,2p)
                    b[j] = y + u;
                    b[j + t] = y + two_p - u;
                }
            }
            m *= 2;
        }
        let pv = p.value();
        for c in a.iter_mut().chain(b.iter_mut()) {
            if *c >= two_p {
                *c -= two_p;
            }
            if *c >= pv {
                *c -= pv;
            }
        }
    }

    /// Whether the reduced-load kernels take the lazy path (output in
    /// `[0, 4p)`) rather than the strict fallback (canonical output).
    /// Consumers use this to pick the congruence offset.
    #[inline]
    pub fn reduced_kernel_is_lazy(&self) -> bool {
        self.modulus.bits() <= 60 && self.n >= 4
    }

    /// Forward-transforms a residue **read through a Barrett reduction**:
    /// the first butterfly stage loads `src` (arbitrary `u64` values),
    /// reduces each word modulo this table's modulus on the fly, and the
    /// remaining stages run in place over `dst`. On the lazy (`p < 2^60`)
    /// path the final normalization is skipped — the output stays in the
    /// `[0, 4p)` lazy domain (every value ≡ the normalized result mod
    /// `p`); the strict fallback produces canonical `[0, p)` output. The
    /// key-switch flooring and decomposition consume either domain.
    ///
    /// # Panics
    ///
    /// Panics if either slice length differs from `n`.
    // DOMAIN: [0,4p)
    pub fn forward_reduced_auto(&self, src: &[u64], dst: &mut [u64]) {
        assert_eq!(src.len(), self.n, "polynomial length must equal n");
        assert_eq!(dst.len(), self.n, "polynomial length must equal n");
        let p = &self.modulus;
        if !self.reduced_kernel_is_lazy() {
            for (d, &x) in dst.iter_mut().zip(src) {
                *d = p.reduce_u64(x);
            }
            self.forward(dst);
            return;
        }
        let two_p = 2 * p.value();
        let n = self.n;
        // Stage m = 1 touches every element once: fuse the reduction in.
        {
            let t = n / 2;
            let w = &self.fwd[1];
            for j in 0..t {
                let x = p.reduce_u64(src[j]);
                let v = w.mul_red_lazy(p.reduce_u64(src[j + t]), p); // DOMAIN: [0,2p)
                dst[j] = x + v;
                dst[j + t] = x + two_p - v;
            }
        }
        let mut m = 2usize;
        while m < n {
            let t = n / (2 * m);
            for i in 0..m {
                let w = &self.fwd[m + i];
                let base = 2 * i * t;
                for j in base..base + t {
                    let mut x = dst[j];
                    if x >= two_p {
                        x -= two_p;
                    }
                    let v = w.mul_red_lazy(dst[j + t], p); // DOMAIN: [0,2p)
                    dst[j] = x + v;
                    dst[j + t] = x + two_p - v;
                }
            }
            m *= 2;
        }
    }

    /// The pair counterpart of [`NttTable::forward_reduced_auto`]:
    /// transforms two reduced-on-load residues with interleaved
    /// butterflies (same output-domain contract).
    ///
    /// # Panics
    ///
    /// Panics if any slice length differs from `n`.
    // DOMAIN: [0,4p)
    pub fn forward_reduced_auto2(
        &self,
        src0: &[u64],
        src1: &[u64],
        dst0: &mut [u64],
        dst1: &mut [u64],
    ) {
        assert_eq!(src0.len(), self.n, "polynomial length must equal n");
        assert_eq!(src1.len(), self.n, "polynomial length must equal n");
        assert_eq!(dst0.len(), self.n, "polynomial length must equal n");
        assert_eq!(dst1.len(), self.n, "polynomial length must equal n");
        let p = &self.modulus;
        if !self.reduced_kernel_is_lazy() {
            for (d, &x) in dst0.iter_mut().zip(src0) {
                *d = p.reduce_u64(x);
            }
            for (d, &x) in dst1.iter_mut().zip(src1) {
                *d = p.reduce_u64(x);
            }
            self.forward(dst0);
            self.forward(dst1);
            return;
        }
        let two_p = 2 * p.value();
        let n = self.n;
        {
            let t = n / 2;
            let w = &self.fwd[1];
            for j in 0..t {
                let x = p.reduce_u64(src0[j]);
                let v = w.mul_red_lazy(p.reduce_u64(src0[j + t]), p); // DOMAIN: [0,2p)
                dst0[j] = x + v;
                dst0[j + t] = x + two_p - v;

                let y = p.reduce_u64(src1[j]);
                let u = w.mul_red_lazy(p.reduce_u64(src1[j + t]), p); // DOMAIN: [0,2p)
                dst1[j] = y + u;
                dst1[j + t] = y + two_p - u;
            }
        }
        let mut m = 2usize;
        while m < n {
            let t = n / (2 * m);
            for i in 0..m {
                let w = &self.fwd[m + i];
                let base = 2 * i * t;
                for j in base..base + t {
                    let mut x = dst0[j];
                    if x >= two_p {
                        x -= two_p;
                    }
                    let v = w.mul_red_lazy(dst0[j + t], p); // DOMAIN: [0,2p)
                    dst0[j] = x + v;
                    dst0[j + t] = x + two_p - v;

                    let mut y = dst1[j];
                    if y >= two_p {
                        y -= two_p;
                    }
                    let u = w.mul_red_lazy(dst1[j + t], p); // DOMAIN: [0,2p)
                    dst1[j] = y + u;
                    dst1[j + t] = y + two_p - u;
                }
            }
            m *= 2;
        }
    }

    /// Inverse-transforms **two** residues under the same modulus with
    /// interleaved butterflies; the pair counterpart of
    /// [`NttTable::inverse_auto`], bit-identical to two sequential calls.
    ///
    /// # Panics
    ///
    /// Panics if either slice length differs from `n`.
    #[inline]
    // DOMAIN: [0,2p)
    pub fn inverse_auto2(&self, a: &mut [u64], b: &mut [u64]) {
        if self.modulus.bits() <= 60 {
            self.inverse_lazy2(a, b); // DOMAIN: [0,2p)
        } else {
            self.inverse(a);
            self.inverse(b);
        }
    }

    /// Lazy-reduction inverse NTT of two residues with interleaved
    /// butterflies (see [`NttTable::inverse_auto2`]).
    ///
    /// # Panics
    ///
    /// Panics if a slice length differs from `n` or the modulus exceeds
    /// 60 bits.
    // DOMAIN: [0,2p)
    pub fn inverse_lazy2(&self, a: &mut [u64], b: &mut [u64]) {
        assert_eq!(a.len(), self.n, "polynomial length must equal n");
        assert_eq!(b.len(), self.n, "polynomial length must equal n");
        assert!(self.modulus.bits() <= 60, "lazy NTT requires p < 2^60");
        let p = &self.modulus;
        let two_p = 2 * p.value();
        let n = self.n;
        let mut m = n / 2;
        while m >= 1 {
            let t = n / (2 * m);
            for i in 0..m {
                let w = &self.inv_plain[m + i];
                let base = 2 * i * t;
                for j in base..base + t {
                    let x = a[j];
                    let y = a[j + t];
                    let mut u = x + y;
                    if u >= two_p {
                        u -= two_p;
                    }
                    a[j] = u;
                    a[j + t] = w.mul_red_lazy(x + two_p - y, p); // DOMAIN: [0,2p)

                    let x = b[j];
                    let y = b[j + t];
                    let mut u = x + y;
                    if u >= two_p {
                        u -= two_p;
                    }
                    b[j] = u;
                    b[j + t] = w.mul_red_lazy(x + two_p - y, p); // DOMAIN: [0,2p)
                }
            }
            m /= 2;
        }
        for c in a.iter_mut().chain(b.iter_mut()) {
            *c = self.inv_n_const.mul_red(*c, p);
        }
    }

    /// Evaluates the polynomial at `ψ^{2·brv(j)+1}` directly — the defining
    /// equation `ã_j = Σ_i a_i ψ^{(2i+1)·e}` of Section 3.1, used as the
    /// O(n²) reference in tests.
    pub fn forward_reference(&self, a: &[u64]) -> Vec<u64> {
        assert_eq!(a.len(), self.n);
        let p = &self.modulus;
        let mut out = vec![0u64; self.n];
        for (j, slot) in out.iter_mut().enumerate() {
            let e = (2 * bit_reverse(j, self.log_n) + 1) as u64;
            let base = p.pow_mod(self.root, e);
            let mut x = 1u64;
            let mut acc = 0u64;
            for &coeff in a {
                acc = p.add_mod(acc, p.mul_mod(coeff, x));
                x = p.mul_mod(x, base);
            }
            *slot = acc;
        }
        out
    }
}

/// Forward-transforms `tables.len()` contiguous limbs of `data` (limb `i`
/// spans `data[i·n..(i+1)·n]` and uses `tables[i]`), dispatching limbs
/// across the executor's lanes — the software analogue of streaming RNS
/// residues through parallel NTT cores. Each limb uses the fastest
/// applicable kernel, so output is bit-identical to calling
/// [`NttTable::forward_auto`] per limb sequentially.
///
/// # Panics
///
/// Panics if `data.len() != tables.len() * n` or a table's degree is not
/// `n`.
pub fn forward_limbs(exec: &dyn Executor, tables: &[NttTable], data: &mut [u64], n: usize) {
    assert_eq!(data.len(), tables.len() * n, "limb data/table mismatch");
    exec::for_each_limb(exec, data, n, |i, limb| tables[i].forward_auto(limb));
}

/// Inverse-transforms contiguous limbs of `data` through the executor;
/// the counterpart of [`forward_limbs`]. Bit-identical to calling
/// [`NttTable::inverse_auto`] per limb sequentially.
///
/// # Panics
///
/// Panics if `data.len() != tables.len() * n` or a table's degree is not
/// `n`.
pub fn inverse_limbs(exec: &dyn Executor, tables: &[NttTable], data: &mut [u64], n: usize) {
    assert_eq!(data.len(), tables.len() * n, "limb data/table mismatch");
    exec::for_each_limb(exec, data, n, |i, limb| tables[i].inverse_auto(limb));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::primes::generate_ntt_primes;

    fn table(n: usize, bits: u32) -> NttTable {
        let p = generate_ntt_primes(bits, 1, n).unwrap()[0];
        NttTable::new(n, Modulus::new(p).unwrap()).unwrap()
    }

    #[test]
    fn bit_reverse_basics() {
        assert_eq!(bit_reverse(0b001, 3), 0b100);
        assert_eq!(bit_reverse(0b110, 3), 0b011);
        assert_eq!(bit_reverse(5, 0), 0);
        for i in 0..64usize {
            assert_eq!(bit_reverse(bit_reverse(i, 6), 6), i);
        }
    }

    #[test]
    fn paired_kernels_bit_identical_to_single() {
        for bits in [40u32, 52, 59, 61] {
            let n = 64usize;
            let t = table(n, bits);
            let p = t.modulus().value();
            let mut a: Vec<u64> = (0..n as u64).map(|i| (i * 0x9e37 + 3) % p).collect();
            let mut b: Vec<u64> = (0..n as u64).map(|i| (i * i + 17) % p).collect();
            let mut sa = a.clone();
            let mut sb = b.clone();
            t.forward_auto2(&mut a, &mut b);
            t.forward_auto(&mut sa);
            t.forward_auto(&mut sb);
            assert_eq!(a, sa, "forward pair diverged at {bits} bits");
            assert_eq!(b, sb, "forward pair diverged at {bits} bits");
            t.inverse_auto2(&mut a, &mut b);
            t.inverse_auto(&mut sa);
            t.inverse_auto(&mut sb);
            assert_eq!(a, sa, "inverse pair diverged at {bits} bits");
            assert_eq!(b, sb, "inverse pair diverged at {bits} bits");
        }
    }

    #[test]
    fn reduced_forward_congruent_to_plain_forward() {
        for bits in [40u32, 59, 61] {
            for n in [4usize, 64] {
                let t = table(n, bits.max(n.trailing_zeros() + 2));
                let p = t.modulus();
                // Arbitrary u64 inputs (beyond p) are legal.
                let src0: Vec<u64> = (0..n as u64).map(|i| i.wrapping_mul(0x9e37_79b9)).collect();
                let src1: Vec<u64> = (0..n as u64).map(|i| i.wrapping_mul(0x85eb_ca6b)).collect();
                let mut want0: Vec<u64> = src0.iter().map(|&x| p.reduce_u64(x)).collect();
                let mut want1: Vec<u64> = src1.iter().map(|&x| p.reduce_u64(x)).collect();
                t.forward_auto(&mut want0);
                t.forward_auto(&mut want1);
                let mut got0 = vec![0u64; n];
                let mut got1 = vec![0u64; n];
                t.forward_reduced_auto2(&src0, &src1, &mut got0, &mut got1);
                let four_p = 4 * p.value();
                for (g, w) in got0.iter().zip(&want0).chain(got1.iter().zip(&want1)) {
                    assert!(*g < four_p, "lazy output out of domain");
                    assert_eq!(p.reduce_u64(*g), *w, "bits={bits} n={n}");
                }
                let mut single = vec![0u64; n];
                t.forward_reduced_auto(&src0, &mut single);
                for (g, w) in single.iter().zip(&want0) {
                    assert_eq!(p.reduce_u64(*g), *w);
                }
            }
        }
    }

    #[test]
    fn roundtrip_small_sizes() {
        for log_n in [1u32, 2, 3, 4, 8] {
            let n = 1usize << log_n;
            let t = table(n, 30.max(log_n + 2));
            let p = t.modulus().value();
            let mut a: Vec<u64> = (0..n as u64).map(|i| (i * 0x9e37) % p).collect();
            let orig = a.clone();
            t.forward(&mut a);
            assert_ne!(a, orig, "transform must not be identity");
            t.inverse(&mut a);
            assert_eq!(a, orig, "n={n}");
        }
    }

    #[test]
    fn matches_reference_dft() {
        let n = 16usize;
        let t = table(n, 30);
        let p = t.modulus().value();
        let a: Vec<u64> = (0..n as u64).map(|i| (i * i + 3) % p).collect();
        let mut fast = a.clone();
        t.forward(&mut fast);
        assert_eq!(fast, t.forward_reference(&a));
    }

    #[test]
    fn negacyclic_convolution_theorem() {
        // NTT(a) ⊙ NTT(b) == NTT(a *neg b)
        let n = 32usize;
        let t = table(n, 40);
        let p = t.modulus();
        let a: Vec<u64> = (0..n as u64).map(|i| (7 * i + 1) % p.value()).collect();
        let b: Vec<u64> = (0..n as u64).map(|i| (i * i) % p.value()).collect();

        // Schoolbook negacyclic product.
        let mut c = vec![0u64; n];
        for (i, &ai) in a.iter().enumerate() {
            for (j, &bj) in b.iter().enumerate() {
                let prod = p.mul_mod(ai, bj);
                let k = i + j;
                if k < n {
                    c[k] = p.add_mod(c[k], prod);
                } else {
                    c[k - n] = p.sub_mod(c[k - n], prod);
                }
            }
        }

        let mut ta = a.clone();
        let mut tb = b.clone();
        t.forward(&mut ta);
        t.forward(&mut tb);
        let mut tc: Vec<u64> = ta.iter().zip(&tb).map(|(&x, &y)| p.mul_mod(x, y)).collect();
        t.inverse(&mut tc);
        assert_eq!(tc, c);
    }

    #[test]
    fn linearity() {
        let n = 64usize;
        let t = table(n, 40);
        let p = t.modulus();
        let a: Vec<u64> = (0..n as u64).map(|i| i % p.value()).collect();
        let b: Vec<u64> = (0..n as u64).map(|i| (i * 31 + 5) % p.value()).collect();
        let sum: Vec<u64> = a.iter().zip(&b).map(|(&x, &y)| p.add_mod(x, y)).collect();
        let mut ta = a.clone();
        let mut tb = b.clone();
        let mut tsum = sum.clone();
        t.forward(&mut ta);
        t.forward(&mut tb);
        t.forward(&mut tsum);
        let recombined: Vec<u64> = ta.iter().zip(&tb).map(|(&x, &y)| p.add_mod(x, y)).collect();
        assert_eq!(tsum, recombined);
    }

    #[test]
    fn production_sizes_roundtrip() {
        for n in [4096usize, 8192] {
            let t = table(n, 36);
            let p = t.modulus().value();
            let mut a: Vec<u64> = (0..n as u64)
                .map(|i| i.wrapping_mul(0x9e3779b97f4a7c15) % p)
                .collect();
            let orig = a.clone();
            t.forward(&mut a);
            t.inverse(&mut a);
            assert_eq!(a, orig);
        }
    }

    #[test]
    fn lazy_forward_is_bit_identical() {
        for (n, bits) in [(64usize, 30u32), (256, 45), (4096, 50), (4096, 60)] {
            let t = table(n, bits);
            let p = t.modulus().value();
            let input: Vec<u64> = (0..n as u64)
                .map(|i| i.wrapping_mul(0x9e3779b97f4a7c15) % p)
                .collect();
            let mut standard = input.clone();
            t.forward(&mut standard);
            let mut lazy = input.clone();
            t.forward_lazy(&mut lazy);
            assert_eq!(standard, lazy, "n={n} bits={bits}");
        }
    }

    #[test]
    fn lazy_inverse_is_bit_identical() {
        for (n, bits) in [(64usize, 30u32), (256, 45), (4096, 50), (4096, 60)] {
            let t = table(n, bits);
            let p = t.modulus().value();
            let input: Vec<u64> = (0..n as u64)
                .map(|i| i.wrapping_mul(0x2545F4914F6CDD1D) % p)
                .collect();
            let mut standard = input.clone();
            t.inverse(&mut standard);
            let mut lazy = input.clone();
            t.inverse_lazy(&mut lazy);
            assert_eq!(standard, lazy, "n={n} bits={bits}");
            // And auto dispatch matches.
            let mut auto = input.clone();
            t.inverse_auto(&mut auto);
            assert_eq!(auto, standard);
        }
    }

    #[test]
    fn lazy_roundtrip() {
        let n = 512;
        let t = table(n, 45);
        let p = t.modulus().value();
        let input: Vec<u64> = (0..n as u64).map(|i| (i * 13 + 1) % p).collect();
        let mut a = input.clone();
        t.forward_lazy(&mut a);
        t.inverse_lazy(&mut a);
        assert_eq!(a, input);
    }

    #[test]
    fn lazy_then_inverse_roundtrips() {
        let n = 1024;
        let t = table(n, 45);
        let p = t.modulus().value();
        let input: Vec<u64> = (0..n as u64).map(|i| (i * 7 + 5) % p).collect();
        let mut a = input.clone();
        t.forward_lazy(&mut a);
        t.inverse(&mut a);
        assert_eq!(a, input);
    }

    #[test]
    #[should_panic(expected = "lazy NTT requires")]
    fn lazy_rejects_wide_modulus() {
        // 61-bit modulus exceeds the 60-bit lazy bound.
        let p = generate_ntt_primes(61, 1, 64).unwrap()[0];
        let t = NttTable::new(64, Modulus::new(p).unwrap()).unwrap();
        let mut a = vec![0u64; 64];
        t.forward_lazy(&mut a);
    }

    #[test]
    fn rejects_bad_parameters() {
        let p = Modulus::new(97).unwrap();
        assert!(NttTable::new(3, p).is_err());
        // 97 ≡ 1 mod 32 (96 = 3*32): n=16 works; n=64 doesn't (128 ∤ 96).
        assert!(NttTable::new(16, p).is_ok());
        assert!(NttTable::new(64, p).is_err());
        // Wrong explicit root: 1 is never a primitive 2n-th root.
        assert!(NttTable::with_root(16, p, 1).is_err());
    }

    #[test]
    #[should_panic(expected = "length")]
    fn forward_panics_on_wrong_length() {
        let t = table(16, 20);
        let mut a = vec![0u64; 8];
        t.forward(&mut a);
    }
}
