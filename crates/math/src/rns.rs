//! Residue Number System (RNS) tools.
//!
//! HEAX targets the *full-RNS* variant of CKKS: every polynomial lives as a
//! vector of residue polynomials modulo word-sized primes, and no
//! multi-precision arithmetic ever happens on the evaluation path. The only
//! places the composed integer is needed are decryption/decoding and tests;
//! for those we use Garner's mixed-radix conversion, which stays entirely in
//! word arithmetic (Section 2, "Residue Number System").
//!
//! The gadget decomposition `g⁻¹` and gadget vector
//! `g = (π_i·[π_i⁻¹]_{p_i})_i` of Section 2 / Section 3.4 are also
//! precomputed here; they drive `KskGen` in `heax-ckks` and the KeySwitch
//! dataflow in `heax-hw`.

use crate::word::{Modulus, MulRedConstant};
use crate::MathError;

/// An ordered RNS basis `(p_0, …, p_{k-1})` of pairwise-coprime word-sized
/// moduli, with precomputed Garner constants.
///
/// # Examples
///
/// ```
/// use heax_math::rns::RnsBasis;
///
/// # fn main() -> Result<(), heax_math::MathError> {
/// let basis = RnsBasis::new(&[97, 193])?;
/// let x = 5000u64;
/// let residues = [x % 97, x % 193];
/// assert_eq!(basis.compose_u128(&residues), x as u128);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct RnsBasis {
    moduli: Vec<Modulus>,
    /// `inv_prod[j][i] = (p_i)^{-1} mod p_j` for `i < j` (Garner constants).
    garner_inv: Vec<Vec<u64>>,
    /// Mixed-radix digits of `(Q-1)/2`, for exact centering.
    half_q_digits: Vec<u64>,
}

impl RnsBasis {
    /// Builds a basis from raw moduli values.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::InvalidModulus`] for invalid words,
    /// [`MathError::NotCoprime`] if two moduli share a factor, and
    /// [`MathError::EmptyBasis`] for an empty list.
    pub fn new(moduli: &[u64]) -> Result<Self, MathError> {
        let mods: Result<Vec<Modulus>, MathError> =
            moduli.iter().map(|&p| Modulus::new(p)).collect();
        Self::from_moduli(mods?)
    }

    /// Builds a basis from prepared [`Modulus`] values.
    ///
    /// # Errors
    ///
    /// Same conditions as [`RnsBasis::new`].
    pub fn from_moduli(moduli: Vec<Modulus>) -> Result<Self, MathError> {
        if moduli.is_empty() {
            return Err(MathError::EmptyBasis);
        }
        let k = moduli.len();
        let mut garner_inv = vec![Vec::new(); k];
        for j in 0..k {
            let pj = &moduli[j];
            let mut row = Vec::with_capacity(j);
            for pi in moduli.iter().take(j) {
                let r = pj.reduce_u64(pi.value());
                let inv = pj.inv_mod(r).map_err(|_| MathError::NotCoprime {
                    a: pi.value(),
                    b: pj.value(),
                })?;
                row.push(inv);
            }
            garner_inv[j] = row;
        }
        let mut basis = Self {
            moduli,
            garner_inv,
            half_q_digits: Vec::new(),
        };
        // Residues of (Q-1)/2: Q ≡ 0, so (Q-1) ≡ -1, and dividing by 2 means
        // multiplying by 2^{-1} (all moduli odd).
        let half_residues: Vec<u64> = basis
            .moduli
            .iter()
            .map(|p| p.mul_mod(p.value() - 1, p.inv_two()))
            .collect();
        basis.half_q_digits = basis.mixed_radix_digits(&half_residues);
        Ok(basis)
    }

    /// Number of moduli in the basis.
    #[inline]
    pub fn len(&self) -> usize {
        self.moduli.len()
    }

    /// Whether the basis is empty (never true for a constructed basis).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.moduli.is_empty()
    }

    /// The moduli, in order.
    #[inline]
    pub fn moduli(&self) -> &[Modulus] {
        &self.moduli
    }

    /// The `i`-th modulus.
    #[inline]
    pub fn modulus(&self, i: usize) -> &Modulus {
        &self.moduli[i]
    }

    /// A sub-basis over the first `k` moduli.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::EmptyBasis`] if `k == 0`.
    pub fn truncate(&self, k: usize) -> Result<Self, MathError> {
        Self::from_moduli(self.moduli[..k.min(self.len())].to_vec())
    }

    /// Decomposes residues into Garner mixed-radix digits
    /// `x = d_0 + d_1·p_0 + d_2·p_0·p_1 + …` with `d_i ∈ [0, p_i)`.
    ///
    /// # Panics
    ///
    /// Panics if `residues.len() != self.len()`.
    pub fn mixed_radix_digits(&self, residues: &[u64]) -> Vec<u64> {
        assert_eq!(residues.len(), self.len(), "residue count mismatch");
        let k = self.len();
        let mut digits = vec![0u64; k];
        for j in 0..k {
            let pj = &self.moduli[j];
            let mut t = pj.reduce_u64(residues[j]);
            for (di, inv) in digits[..j].iter().zip(&self.garner_inv[j]) {
                t = pj.mul_mod(pj.sub_mod(t, pj.reduce_u64(*di)), *inv);
            }
            digits[j] = t;
        }
        digits
    }

    /// Composes residues into the unique `x ∈ [0, Q)` as a `u128`.
    ///
    /// # Panics
    ///
    /// Panics if the composed value (or Q itself) does not fit in 128 bits —
    /// intended for bases of at most two ~60-bit moduli or tests with small
    /// moduli.
    pub fn compose_u128(&self, residues: &[u64]) -> u128 {
        let digits = self.mixed_radix_digits(residues);
        let mut acc: u128 = 0;
        let mut radix: u128 = 1;
        for (d, p) in digits.iter().zip(&self.moduli) {
            let term = radix.checked_mul(*d as u128).expect("compose overflow");
            acc = acc.checked_add(term).expect("compose overflow");
            radix = radix.checked_mul(p.value() as u128).unwrap_or({
                // The final radix update may overflow harmlessly when the
                // last digit was already folded in; only fail if digits
                // remain.
                u128::MAX
            });
        }
        acc
    }

    /// Composes residues into the centered representative in `(-Q/2, Q/2]`,
    /// returned as an `f64`.
    ///
    /// The comparison against `Q/2` is done exactly on mixed-radix digits;
    /// only the final fold to `f64` rounds (53-bit mantissa), which is the
    /// inherent precision of CKKS decoding anyway.
    pub fn compose_centered_f64(&self, residues: &[u64]) -> f64 {
        let digits = self.mixed_radix_digits(residues);
        if self.digits_gt_half(&digits) {
            // x > (Q-1)/2  =>  return -(Q - x).
            let neg: Vec<u64> = residues
                .iter()
                .zip(&self.moduli)
                .map(|(&r, p)| p.neg_mod(p.reduce_u64(r)))
                .collect();
            -self.fold_digits_f64(&self.mixed_radix_digits(&neg))
        } else {
            self.fold_digits_f64(&digits)
        }
    }

    /// Composes residues into the centered representative as `i128`.
    ///
    /// # Panics
    ///
    /// Panics if the centered magnitude does not fit in an `i128`.
    pub fn compose_centered_i128(&self, residues: &[u64]) -> i128 {
        let digits = self.mixed_radix_digits(residues);
        if self.digits_gt_half(&digits) {
            let neg: Vec<u64> = residues
                .iter()
                .zip(&self.moduli)
                .map(|(&r, p)| p.neg_mod(p.reduce_u64(r)))
                .collect();
            -self.fold_digits_i128(&self.mixed_radix_digits(&neg))
        } else {
            self.fold_digits_i128(&digits)
        }
    }

    fn digits_gt_half(&self, digits: &[u64]) -> bool {
        // Mixed-radix comparison, most-significant digit first.
        for (d, h) in digits.iter().zip(&self.half_q_digits).rev() {
            if d != h {
                return d > h;
            }
        }
        false
    }

    fn fold_digits_f64(&self, digits: &[u64]) -> f64 {
        let mut acc = 0.0f64;
        for (d, p) in digits.iter().zip(&self.moduli).rev() {
            acc = acc * p.value() as f64 + *d as f64;
        }
        acc
    }

    fn fold_digits_i128(&self, digits: &[u64]) -> i128 {
        let mut acc: i128 = 0;
        for (d, p) in digits.iter().zip(&self.moduli).rev() {
            acc = acc
                .checked_mul(p.value() as i128)
                .and_then(|a| a.checked_add(*d as i128))
                .expect("centered value exceeds i128");
        }
        acc
    }

    /// `Q` as an `f64` (rounded), useful for scale bookkeeping.
    pub fn product_f64(&self) -> f64 {
        self.moduli.iter().map(|p| p.value() as f64).product()
    }

    /// `log2(Q)`.
    pub fn log2_product(&self) -> f64 {
        self.moduli.iter().map(|p| (p.value() as f64).log2()).sum()
    }
}

/// Precomputed RNS gadget for key switching over basis
/// `q_ℓ = p_0⋯p_ℓ` extended by the special modulus `p_sp`.
///
/// Section 3.4 of the paper: with `π_i = q/p_i`, the gadget vector is
/// `g = (π_i·[π_i^{-1}]_{p_i})_i` and the decomposition is
/// `g^{-1}(a) = ([a]_{p_i})_i`, so that `a = ⟨g, g^{-1}(a)⟩ (mod q)`.
///
/// This struct stores, for each decomposition index `i`, the residues of
/// `p_sp · g_i` modulo every modulus of the extended basis `q·p_sp` — i.e.
/// exactly the constants `KskGen` multiplies into the encrypted key.
#[derive(Clone, Debug)]
pub struct RnsGadget {
    /// `factor[i][j] = [p_sp · g_i]_{m_j}` where `m_j` ranges over the
    /// moduli of `q` followed by the special modulus.
    factors: Vec<Vec<u64>>,
    decomp_len: usize,
}

impl RnsGadget {
    /// Builds the gadget for ciphertext moduli `q_basis` and special modulus
    /// `special`.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::NotCoprime`] if moduli are not pairwise coprime.
    pub fn new(q_basis: &RnsBasis, special: &Modulus) -> Result<Self, MathError> {
        let k = q_basis.len();
        let mut factors = vec![vec![0u64; k + 1]; k];
        for (i, factors_i) in factors.iter_mut().enumerate() {
            let pi = q_basis.modulus(i);
            // w_i = [ (q/p_i)^{-1} ]_{p_i}  as an integer in [0, p_i).
            let mut prod_mod_pi = 1u64;
            for (t, pt) in q_basis.moduli().iter().enumerate() {
                if t != i {
                    prod_mod_pi = pi.mul_mod(prod_mod_pi, pi.reduce_u64(pt.value()));
                }
            }
            let w_i = pi.inv_mod(prod_mod_pi).map_err(|_| MathError::NotCoprime {
                a: pi.value(),
                b: prod_mod_pi,
            })?;

            // g_i mod m_j for each target modulus m_j:
            //   g_i = (q/p_i) * w_i, so mod p_j (j≠i) it vanishes; mod p_i it
            //   is 1; mod the special prime compute both factors explicitly.
            for (j, mj) in q_basis
                .moduli()
                .iter()
                .chain(core::iter::once(special))
                .enumerate()
            {
                let g_i_mod = if j < k {
                    if j == i {
                        1u64
                    } else {
                        0u64
                    }
                } else {
                    // [q/p_i]_{p_sp} * [w_i]_{p_sp}
                    let mut pi_tilde = 1u64;
                    for (t, pt) in q_basis.moduli().iter().enumerate() {
                        if t != i {
                            pi_tilde = mj.mul_mod(pi_tilde, mj.reduce_u64(pt.value()));
                        }
                    }
                    mj.mul_mod(pi_tilde, mj.reduce_u64(w_i))
                };
                // Multiply by the special modulus p_sp (the "P·" factor of
                // hybrid key switching). Mod p_sp this is 0 — consistent with
                // P·g_i ≡ 0 (mod p_sp).
                factors_i[j] = mj.mul_mod(g_i_mod, mj.reduce_u64(special.value()));
            }
        }
        Ok(Self {
            factors,
            decomp_len: k,
        })
    }

    /// Number of decomposition components `d` (= number of `q` moduli).
    #[inline]
    pub fn decomp_len(&self) -> usize {
        self.decomp_len
    }

    /// `[p_sp·g_i]_{m_j}` — `j` indexes the moduli of `q` then the special
    /// modulus (index `decomp_len`).
    #[inline]
    pub fn factor(&self, i: usize, j: usize) -> u64 {
        self.factors[i][j]
    }
}

/// Constants for dividing by (flooring) a dropped modulus: used by RNS
/// flooring (Algorithm 6) and modulus switching. For target modulus `p_j`
/// and dropped modulus `p_drop`, stores `[p_drop^{-1}]_{p_j}` as a
/// [`MulRedConstant`].
#[derive(Clone, Debug)]
pub struct RnsFloorConstants {
    inv_dropped: Vec<MulRedConstant>,
}

impl RnsFloorConstants {
    /// Precomputes `[p_drop^{-1}]_{p_j}` for every remaining modulus.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::NotCoprime`] if `p_drop` is not invertible
    /// modulo one of the remaining moduli.
    pub fn new(remaining: &[Modulus], dropped: &Modulus) -> Result<Self, MathError> {
        let mut inv_dropped = Vec::with_capacity(remaining.len());
        for pj in remaining {
            let inv =
                pj.inv_mod(pj.reduce_u64(dropped.value()))
                    .map_err(|_| MathError::NotCoprime {
                        a: dropped.value(),
                        b: pj.value(),
                    })?;
            inv_dropped.push(MulRedConstant::new(inv, pj));
        }
        Ok(Self { inv_dropped })
    }

    /// `[p_drop^{-1}]_{p_j}` for remaining modulus index `j`.
    #[inline]
    pub fn inv(&self, j: usize) -> &MulRedConstant {
        &self.inv_dropped[j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::primes::generate_ntt_primes;

    #[test]
    fn rejects_degenerate_bases() {
        assert!(RnsBasis::new(&[]).is_err());
        assert!(RnsBasis::new(&[15, 35]).is_err()); // share factor 5
        assert!(RnsBasis::new(&[97, 97]).is_err());
        assert!(RnsBasis::new(&[4]).is_err()); // even
    }

    #[test]
    fn compose_small() {
        let basis = RnsBasis::new(&[97, 193, 257]).unwrap();
        let q: u128 = 97 * 193 * 257;
        for x in [0u128, 1, 12345, q - 1, q / 2, q / 2 + 1] {
            let residues: Vec<u64> = [97u64, 193, 257]
                .iter()
                .map(|&p| (x % p as u128) as u64)
                .collect();
            assert_eq!(basis.compose_u128(&residues), x, "x={x}");
        }
    }

    #[test]
    fn centered_compose() {
        let basis = RnsBasis::new(&[97, 193]).unwrap();
        let q: i128 = 97 * 193;
        for v in [-q / 2, -1i128, 0, 1, 42, q / 2] {
            let residues: Vec<u64> = [97i128, 193]
                .iter()
                .map(|&p| (v.rem_euclid(p)) as u64)
                .collect();
            assert_eq!(basis.compose_centered_i128(&residues), v, "v={v}");
            assert_eq!(basis.compose_centered_f64(&residues), v as f64);
        }
    }

    #[test]
    fn centered_compose_large_basis() {
        // 5 real NTT primes of 43-44 bits: centered small values survive.
        let mut primes = generate_ntt_primes(43, 2, 8192).unwrap();
        primes.extend(generate_ntt_primes(44, 3, 8192).unwrap());
        let basis = RnsBasis::new(&primes).unwrap();
        for v in [-123456789i128, -1, 0, 7, 1 << 40] {
            let residues: Vec<u64> = primes
                .iter()
                .map(|&p| (v.rem_euclid(p as i128)) as u64)
                .collect();
            assert_eq!(basis.compose_centered_i128(&residues), v);
        }
    }

    #[test]
    fn mixed_radix_digits_reconstruct() {
        let basis = RnsBasis::new(&[7, 11, 13]).unwrap();
        let x = 700u64;
        let residues = [x % 7, x % 11, x % 13];
        let d = basis.mixed_radix_digits(&residues);
        assert_eq!(d[0] + 7 * d[1] + 77 * d[2], x);
    }

    #[test]
    fn truncate_keeps_prefix() {
        let basis = RnsBasis::new(&[97, 193, 257]).unwrap();
        let t = basis.truncate(2).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.modulus(0).value(), 97);
        assert!(basis.truncate(0).is_err());
    }

    #[test]
    fn gadget_reconstructs_identity() {
        // Σ_i [a]_{p_i} · g_i ≡ a (mod q); with the P factor:
        // Σ_i [a]_{p_i} · (P·g_i) ≡ P·a (mod q·P).
        let q_primes = generate_ntt_primes(30, 3, 64).unwrap();
        let sp = generate_ntt_primes(31, 1, 64).unwrap()[0];
        let q_basis = RnsBasis::new(&q_primes).unwrap();
        let special = Modulus::new(sp).unwrap();
        let gadget = RnsGadget::new(&q_basis, &special).unwrap();

        let full = RnsBasis::new(
            &q_primes
                .iter()
                .copied()
                .chain(core::iter::once(sp))
                .collect::<Vec<_>>(),
        )
        .unwrap();

        let a: u128 = 0x1234_5678_9abc;
        // decomposition digits of a
        let decomp: Vec<u64> = q_primes.iter().map(|&p| (a % p as u128) as u64).collect();
        // accumulate Σ decomp_i * P·g_i in the full basis
        let mut acc = vec![0u64; full.len()];
        for (i, &d) in decomp.iter().enumerate() {
            for (j, m) in full.moduli().iter().enumerate() {
                let term = m.mul_mod(m.reduce_u64(d), gadget.factor(i, j));
                acc[j] = m.add_mod(acc[j], term);
            }
        }
        let got = full.compose_u128(&acc);
        let q: u128 = q_primes.iter().map(|&p| p as u128).product();
        let expected = (a * sp as u128) % (q * sp as u128);
        assert_eq!(got, expected);
    }

    #[test]
    fn floor_constants_invert() {
        let primes = generate_ntt_primes(30, 3, 64).unwrap();
        let mods: Vec<Modulus> = primes.iter().map(|&p| Modulus::new(p).unwrap()).collect();
        let (rest, drop) = mods.split_at(2);
        let fc = RnsFloorConstants::new(rest, &drop[0]).unwrap();
        for (j, pj) in rest.iter().enumerate() {
            let prod = fc.inv(j).mul_red(pj.reduce_u64(drop[0].value()), pj);
            assert_eq!(prod, 1);
        }
    }
}
