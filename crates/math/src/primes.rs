//! NTT-friendly prime generation.
//!
//! The CKKS ciphertext modulus is a product of word-sized primes
//! `p ≡ 1 (mod 2n)` so that a primitive `2n`-th root of unity `ψ` exists
//! (`ψ^n ≡ -1 mod p`), enabling the negacyclic NTT of Section 3.1.
//!
//! HEAX additionally requires `p < 2^52` so that the 54-bit datapath of
//! Algorithm 2 is correct; the paper notes "We have precomputed all of such
//! moduli for different parameters". This module *generates* them instead.

use crate::word::Modulus;
use crate::MathError;

/// Deterministic Miller–Rabin primality test, valid for all `u64`.
///
/// Uses the standard 12-base witness set that is proven sufficient below
/// `3.3·10^24` (hence for all 64-bit integers).
pub fn is_prime(n: u64) -> bool {
    const WITNESSES: [u64; 12] = [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37];
    if n < 2 {
        return false;
    }
    for &w in &WITNESSES {
        if n == w {
            return true;
        }
        if n.is_multiple_of(w) {
            return false;
        }
    }
    // n - 1 = d * 2^s with d odd.
    let mut d = n - 1;
    let mut s = 0u32;
    while d.is_multiple_of(2) {
        d >>= 1;
        s += 1;
    }
    let mul = |a: u64, b: u64| ((a as u128 * b as u128) % n as u128) as u64;
    let pow = |mut base: u64, mut e: u64| {
        let mut acc = 1u64;
        base %= n;
        while e > 0 {
            if e & 1 == 1 {
                acc = mul(acc, base);
            }
            base = mul(base, base);
            e >>= 1;
        }
        acc
    };
    'witness: for &w in &WITNESSES {
        let mut x = pow(w, d);
        if x == 1 || x == n - 1 {
            continue;
        }
        for _ in 1..s {
            x = mul(x, x);
            if x == n - 1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// Generates `count` distinct primes of exactly `bits` bits with
/// `p ≡ 1 (mod 2n)`, searching downward from `2^bits`.
///
/// `n` must be a power of two. The returned primes are in decreasing order,
/// which matches the SEAL convention of putting the largest prime last in
/// the modulus chain only after the caller reorders; callers are free to
/// arrange them.
///
/// # Errors
///
/// Returns [`MathError::PrimeSearchExhausted`] if fewer than `count`
/// suitable primes exist below `2^bits`, and [`MathError::InvalidDegree`]
/// if `n` is not a power of two or `bits` is out of the `(log2(2n), 62]`
/// range.
pub fn generate_ntt_primes(bits: u32, count: usize, n: usize) -> Result<Vec<u64>, MathError> {
    if !n.is_power_of_two() || n < 2 {
        return Err(MathError::InvalidDegree { n });
    }
    let two_n = (2 * n) as u64;
    if bits <= two_n.trailing_zeros() || bits > 62 {
        return Err(MathError::InvalidDegree { n });
    }
    let mut primes = Vec::with_capacity(count);
    // Largest candidate < 2^bits that is ≡ 1 (mod 2n): since 2n | 2^bits,
    // that is 2^bits - 2n + 1.
    let mut candidate = (1u64 << bits) - two_n + 1;
    let lower = 1u64 << (bits - 1);
    while primes.len() < count && candidate > lower {
        if is_prime(candidate) {
            primes.push(candidate);
        }
        candidate -= two_n;
    }
    if primes.len() < count {
        return Err(MathError::PrimeSearchExhausted { bits, count, n });
    }
    Ok(primes)
}

/// Generates a modulus chain from a list of bit sizes (one prime per entry),
/// all congruent to `1 (mod 2n)` and pairwise distinct.
///
/// This mirrors SEAL's `CoeffModulus::Create`.
///
/// # Errors
///
/// Propagates errors from [`generate_ntt_primes`].
pub fn generate_prime_chain(bit_sizes: &[u32], n: usize) -> Result<Vec<u64>, MathError> {
    // Group positions by bit size so repeated sizes get distinct primes.
    let mut result = vec![0u64; bit_sizes.len()];
    let mut sizes: Vec<u32> = bit_sizes.to_vec();
    sizes.sort_unstable();
    sizes.dedup();
    for bits in sizes {
        let positions: Vec<usize> = bit_sizes
            .iter()
            .enumerate()
            .filter(|(_, &b)| b == bits)
            .map(|(i, _)| i)
            .collect();
        let primes = generate_ntt_primes(bits, positions.len(), n)?;
        for (slot, p) in positions.into_iter().zip(primes) {
            result[slot] = p;
        }
    }
    Ok(result)
}

#[cfg(test)]
fn bit_len(x: u64) -> u32 {
    64 - x.leading_zeros()
}

/// Finds a primitive `2n`-th root of unity `ψ` modulo prime `p ≡ 1 (mod 2n)`.
///
/// Returns the smallest such root found by scanning generators `g = 2, 3, …`
/// and testing `ψ = g^{(p-1)/2n}`; `ψ` is primitive iff `ψ^n ≡ -1 (mod p)`
/// (for power-of-two `2n`, the order of `ψ` divides `2n` and only a
/// primitive root maps `n ↦ -1`).
///
/// # Errors
///
/// Returns [`MathError::NoPrimitiveRoot`] if `p ≢ 1 (mod 2n)` or no root is
/// found (which cannot happen for a true prime satisfying the congruence).
pub fn primitive_root_2n(modulus: &Modulus, n: usize) -> Result<u64, MathError> {
    let p = modulus.value();
    let two_n = 2 * n as u64;
    if !(p - 1).is_multiple_of(two_n) {
        return Err(MathError::NoPrimitiveRoot { modulus: p, n });
    }
    let exp = (p - 1) / two_n;
    let minus_one = p - 1;
    let mut best: Option<u64> = None;
    // Scan a bounded number of candidates and keep the smallest root, for
    // deterministic tables across runs.
    for g in 2u64..(2 + 256) {
        let psi = modulus.pow_mod(g, exp);
        if modulus.pow_mod(psi, n as u64) == minus_one {
            best = Some(match best {
                Some(b) => b.min(psi),
                None => psi,
            });
        }
    }
    best.ok_or(MathError::NoPrimitiveRoot { modulus: p, n })
}

/// The SEAL-style default modulus-chain bit sizes achieving 128-bit classical
/// security for the three HEAX parameter sets of Table 2.
///
/// The sum of each chain equals the `⌊log qp⌋ + 1` column of Table 2
/// (109, 218, 438 bits); the last entry is the special prime `p`.
pub fn default_chain_bits(n: usize) -> Option<&'static [u32]> {
    match n {
        4096 => Some(&[36, 36, 37]),
        8192 => Some(&[43, 43, 44, 44, 44]),
        16384 => Some(&[48, 48, 48, 49, 49, 49, 49, 49, 49]),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miller_rabin_small() {
        let primes = [2u64, 3, 5, 7, 11, 13, 97, 7919];
        let composites = [0u64, 1, 4, 6, 9, 15, 91, 561, 41041, 3215031751];
        for p in primes {
            assert!(is_prime(p), "{p} is prime");
        }
        for c in composites {
            assert!(!is_prime(c), "{c} is composite");
        }
    }

    #[test]
    fn miller_rabin_large_known() {
        assert!(is_prime(1152921504606830593)); // 2^60 - 16255: NTT prime
        assert!(is_prime(18446744073709551557)); // largest u64 prime
        assert!(!is_prime(18446744073709551555));
    }

    #[test]
    fn generated_primes_are_ntt_friendly() {
        for n in [4096usize, 8192] {
            let primes = generate_ntt_primes(40, 3, n).unwrap();
            assert_eq!(primes.len(), 3);
            for p in primes {
                assert!(is_prime(p));
                assert_eq!(p % (2 * n as u64), 1);
                assert_eq!(bit_len(p), 40);
            }
        }
    }

    #[test]
    fn prime_chain_distinct() {
        let chain = generate_prime_chain(&[36, 36, 37], 4096).unwrap();
        assert_eq!(chain.len(), 3);
        assert_ne!(chain[0], chain[1]);
        assert_eq!(bit_len(chain[0]), 36);
        assert_eq!(bit_len(chain[2]), 37);
        let total: u32 = chain.iter().map(|&p| bit_len(p)).sum();
        assert_eq!(total, 109); // Table 2, Set-A
    }

    #[test]
    fn default_chains_match_table2() {
        // Table 2: |log qp|+1 = 109, 218, 438 for n = 2^12, 2^13, 2^14.
        assert_eq!(default_chain_bits(4096).unwrap().iter().sum::<u32>(), 109);
        assert_eq!(default_chain_bits(8192).unwrap().iter().sum::<u32>(), 218);
        assert_eq!(default_chain_bits(16384).unwrap().iter().sum::<u32>(), 438);
        assert!(default_chain_bits(2048).is_none());
    }

    #[test]
    fn primitive_root_has_order_2n() {
        let n = 4096usize;
        let p = generate_ntt_primes(36, 1, n).unwrap()[0];
        let m = Modulus::new(p).unwrap();
        let psi = primitive_root_2n(&m, n).unwrap();
        assert_eq!(m.pow_mod(psi, n as u64), p - 1);
        assert_eq!(m.pow_mod(psi, 2 * n as u64), 1);
    }

    #[test]
    fn root_search_rejects_bad_congruence() {
        let m = Modulus::new(97).unwrap(); // 97 - 1 = 96, not divisible by 2*64
        assert!(primitive_root_2n(&m, 64).is_err());
    }

    #[test]
    fn exhausted_search_errors() {
        // Only so many 13-bit primes ≡ 1 mod 8192 exist (none: 2n = 8192 > 2^13/2).
        assert!(generate_ntt_primes(13, 1, 4096).is_err());
        // Only one candidate (8193 = 3·2731, composite) exists at 14 bits.
        assert!(generate_ntt_primes(14, 1, 4096).is_err());
    }
}
