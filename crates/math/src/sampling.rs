//! Randomness for RLWE: uniform, ternary, and centered-binomial sampling.
//!
//! The paper's `CKKS.Setup` fixes a key distribution `χ` (ternary, as in
//! SEAL) and an error distribution `Ω`. SEAL samples errors from a clipped
//! discrete Gaussian with `σ = 3.2`; we use the centered binomial
//! distribution `CBD(21)` whose standard deviation `√(21/2) ≈ 3.24` matches,
//! is constant-time-friendly, and is standard in lattice practice (Kyber et
//! al.). The difference is irrelevant to both functionality and the
//! performance study.

use rand::Rng;

use crate::poly::{Representation, RnsPoly};
use crate::word::Modulus;

/// Standard deviation of the error distribution (`CBD(21)`).
pub const ERROR_STDDEV: f64 = 3.240_370_349; // sqrt(10.5)

/// Byte length of the seed carried by seeded ciphertexts.
pub const EXPAND_SEED_LEN: usize = 32;

/// Deterministic expander for 32-byte wire seeds.
///
/// Seeded ciphertexts ship a 32-byte seed in place of their uniform `a`
/// component; sender and receiver both re-derive `a` by running this
/// generator through [`sample_uniform`]. The construction is xoshiro256++
/// with its four state words loaded little-endian from the seed and chained
/// through a SplitMix64 finalizer, so even degenerate seeds (all zero, one
/// bit set) yield a well-distributed state. Like the rest of the vendored
/// `rand` stand-in it is **not** cryptographically secure — a production
/// deployment would use SEAL's Blake2 expansion — but the byte-level
/// expansion is pinned by the wire protocol (`PROTOCOL.md`) and must not
/// change across versions.
#[derive(Clone, Debug)]
pub struct ExpandRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl ExpandRng {
    /// Constructs the expander from a 32-byte seed.
    pub fn from_seed(seed: &[u8; EXPAND_SEED_LEN]) -> Self {
        let mut acc = 0x243f_6a88_85a3_08d3u64; // π fraction: fixed chain IV
        let mut s = [0u64; 4];
        for (i, word) in s.iter_mut().enumerate() {
            let mut w = [0u8; 8];
            w.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
            acc ^= u64::from_le_bytes(w);
            *word = splitmix64(&mut acc);
        }
        Self { s }
    }
}

impl rand::RngCore for ExpandRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Expands a 32-byte seed into the uniform polynomial it stands for.
///
/// This is *the* normative seed→polynomial map of the wire format: both the
/// seeded encryptor and every receiver of a seeded ciphertext call it with
/// the same `(n, moduli)` and must obtain bit-identical output.
pub fn expand_uniform(
    seed: &[u8; EXPAND_SEED_LEN],
    n: usize,
    moduli: &[Modulus],
    repr: Representation,
) -> RnsPoly {
    let mut rng = ExpandRng::from_seed(seed);
    sample_uniform(&mut rng, n, moduli, repr)
}

/// Number of bit pairs in the centered binomial error sampler.
const CBD_BITS: u32 = 21;

/// Samples a uniform element of `R_q` in the given representation.
///
/// Uniformity is representation-independent, so the caller may directly tag
/// the output as NTT form (as `SymEnc` does for the `a` component).
pub fn sample_uniform<R: Rng + ?Sized>(
    rng: &mut R,
    n: usize,
    moduli: &[Modulus],
    repr: Representation,
) -> RnsPoly {
    let mut out = RnsPoly::zero(n, moduli, repr);
    for (i, p) in moduli.iter().enumerate() {
        let bound = p.value();
        // Rejection sampling on the top range to avoid modulo bias.
        let zone = u64::MAX - u64::MAX % bound;
        for c in out.residue_mut(i) {
            let mut v = rng.gen::<u64>();
            while v >= zone {
                v = rng.gen::<u64>();
            }
            *c = v % bound;
        }
    }
    out
}

/// Samples a ternary secret with coefficients in `{-1, 0, 1}`, replicated
/// into every RNS component (coefficient representation).
pub fn sample_ternary<R: Rng + ?Sized>(rng: &mut R, n: usize, moduli: &[Modulus]) -> RnsPoly {
    let signs: Vec<i8> = (0..n).map(|_| rng.gen_range(-1i8..=1)).collect();
    signed_to_rns(&signs_to_i64(&signs), n, moduli)
}

/// Samples an error polynomial from `CBD(21)` (σ ≈ 3.24), replicated into
/// every RNS component (coefficient representation).
pub fn sample_error<R: Rng + ?Sized>(rng: &mut R, n: usize, moduli: &[Modulus]) -> RnsPoly {
    let coeffs: Vec<i64> = (0..n)
        .map(|_| {
            let a = rng.gen::<u32>() & ((1u32 << CBD_BITS) - 1);
            let b = rng.gen::<u32>() & ((1u32 << CBD_BITS) - 1);
            a.count_ones() as i64 - b.count_ones() as i64
        })
        .collect();
    signed_to_rns(&coeffs, n, moduli)
}

/// Lifts signed coefficients into an [`RnsPoly`] (coefficient form).
pub fn signed_to_rns(coeffs: &[i64], n: usize, moduli: &[Modulus]) -> RnsPoly {
    assert_eq!(coeffs.len(), n, "coefficient count mismatch");
    let mut out = RnsPoly::zero(n, moduli, Representation::Coefficient);
    for (i, p) in moduli.iter().enumerate() {
        for (dst, &c) in out.residue_mut(i).iter_mut().zip(coeffs) {
            *dst = p.reduce_i64(c);
        }
    }
    out
}

fn signs_to_i64(signs: &[i8]) -> Vec<i64> {
    signs.iter().map(|&s| s as i64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::primes::generate_ntt_primes;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mods() -> Vec<Modulus> {
        generate_ntt_primes(30, 2, 64)
            .unwrap()
            .into_iter()
            .map(|p| Modulus::new(p).unwrap())
            .collect()
    }

    #[test]
    fn uniform_in_range_and_nontrivial() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = mods();
        let u = sample_uniform(&mut rng, 1024, &m, Representation::Ntt);
        for (p, res) in u.iter() {
            assert!(res.iter().all(|&c| c < p.value()));
            // Statistically certain: 1024 uniform draws aren't all < p/2.
            assert!(res.iter().any(|&c| c >= p.value() / 2));
        }
        assert_eq!(u.representation(), Representation::Ntt);
    }

    #[test]
    fn ternary_values_consistent_across_residues() {
        let mut rng = StdRng::seed_from_u64(2);
        let m = mods();
        let s = sample_ternary(&mut rng, 256, &m);
        for j in 0..256 {
            let v0 = s.residue(0)[j];
            let v1 = s.residue(1)[j];
            let p0 = m[0].value();
            let p1 = m[1].value();
            let c0: i64 = if v0 == 0 {
                0
            } else if v0 == 1 {
                1
            } else {
                assert_eq!(v0, p0 - 1);
                -1
            };
            let c1: i64 = if v1 == 0 {
                0
            } else if v1 == 1 {
                1
            } else {
                assert_eq!(v1, p1 - 1);
                -1
            };
            assert_eq!(c0, c1);
        }
    }

    #[test]
    fn error_is_small_and_centered() {
        let mut rng = StdRng::seed_from_u64(3);
        let m = mods();
        let n = 8192;
        let e = sample_error(&mut rng, n, &m);
        let p0 = m[0].value();
        let mut sum = 0i64;
        let mut sum_sq = 0f64;
        for &c in e.residue(0) {
            let v: i64 = if c > p0 / 2 {
                c as i64 - p0 as i64
            } else {
                c as i64
            };
            assert!(v.abs() <= CBD_BITS as i64, "CBD(21) bounded by ±21");
            sum += v;
            sum_sq += (v * v) as f64;
        }
        let mean = sum as f64 / n as f64;
        let var = sum_sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.3, "mean {mean} should be near 0");
        assert!(
            (var - 10.5).abs() < 1.5,
            "variance {var} should be near 10.5"
        );
    }

    #[test]
    fn signed_lift_roundtrip() {
        let m = mods();
        let coeffs: Vec<i64> = vec![-3, -1, 0, 1, 2, 5, -7, 9];
        let poly = signed_to_rns(&coeffs, 8, &m);
        for (j, &c) in coeffs.iter().enumerate() {
            assert_eq!(poly.residue(0)[j], m[0].reduce_i64(c));
        }
    }

    #[test]
    fn expand_uniform_is_deterministic_and_canonical() {
        let m = mods();
        let seed = [0xA5u8; EXPAND_SEED_LEN];
        let a = expand_uniform(&seed, 256, &m, Representation::Ntt);
        let b = expand_uniform(&seed, 256, &m, Representation::Ntt);
        assert_eq!(a, b);
        for (p, res) in a.iter() {
            assert!(res.iter().all(|&c| c < p.value()));
        }
        // A different seed must diverge.
        let mut other = seed;
        other[31] ^= 1;
        assert_ne!(a, expand_uniform(&other, 256, &m, Representation::Ntt));
    }

    #[test]
    fn expand_rng_survives_degenerate_seeds() {
        use rand::RngCore;
        let mut zero = ExpandRng::from_seed(&[0u8; EXPAND_SEED_LEN]);
        let words: Vec<u64> = (0..64).map(|_| zero.next_u64()).collect();
        assert!(words.iter().any(|&w| w != 0));
        // One-bit seeds land on distinct streams.
        let mut one = [0u8; EXPAND_SEED_LEN];
        one[0] = 1;
        let mut rng_one = ExpandRng::from_seed(&one);
        assert_ne!(words[0], rng_one.next_u64());
    }

    #[test]
    fn deterministic_with_seed() {
        let m = mods();
        let a = sample_uniform(
            &mut StdRng::seed_from_u64(42),
            64,
            &m,
            Representation::Coefficient,
        );
        let b = sample_uniform(
            &mut StdRng::seed_from_u64(42),
            64,
            &m,
            Representation::Coefficient,
        );
        assert_eq!(a, b);
    }
}
