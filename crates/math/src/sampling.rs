//! Randomness for RLWE: uniform, ternary, and centered-binomial sampling.
//!
//! The paper's `CKKS.Setup` fixes a key distribution `χ` (ternary, as in
//! SEAL) and an error distribution `Ω`. SEAL samples errors from a clipped
//! discrete Gaussian with `σ = 3.2`; we use the centered binomial
//! distribution `CBD(21)` whose standard deviation `√(21/2) ≈ 3.24` matches,
//! is constant-time-friendly, and is standard in lattice practice (Kyber et
//! al.). The difference is irrelevant to both functionality and the
//! performance study.

use rand::Rng;

use crate::poly::{Representation, RnsPoly};
use crate::word::Modulus;

/// Standard deviation of the error distribution (`CBD(21)`).
pub const ERROR_STDDEV: f64 = 3.240_370_349; // sqrt(10.5)

/// Number of bit pairs in the centered binomial error sampler.
const CBD_BITS: u32 = 21;

/// Samples a uniform element of `R_q` in the given representation.
///
/// Uniformity is representation-independent, so the caller may directly tag
/// the output as NTT form (as `SymEnc` does for the `a` component).
pub fn sample_uniform<R: Rng + ?Sized>(
    rng: &mut R,
    n: usize,
    moduli: &[Modulus],
    repr: Representation,
) -> RnsPoly {
    let mut out = RnsPoly::zero(n, moduli, repr);
    for (i, p) in moduli.iter().enumerate() {
        let bound = p.value();
        // Rejection sampling on the top range to avoid modulo bias.
        let zone = u64::MAX - u64::MAX % bound;
        for c in out.residue_mut(i) {
            let mut v = rng.gen::<u64>();
            while v >= zone {
                v = rng.gen::<u64>();
            }
            *c = v % bound;
        }
    }
    out
}

/// Samples a ternary secret with coefficients in `{-1, 0, 1}`, replicated
/// into every RNS component (coefficient representation).
pub fn sample_ternary<R: Rng + ?Sized>(rng: &mut R, n: usize, moduli: &[Modulus]) -> RnsPoly {
    let signs: Vec<i8> = (0..n).map(|_| rng.gen_range(-1i8..=1)).collect();
    signed_to_rns(&signs_to_i64(&signs), n, moduli)
}

/// Samples an error polynomial from `CBD(21)` (σ ≈ 3.24), replicated into
/// every RNS component (coefficient representation).
pub fn sample_error<R: Rng + ?Sized>(rng: &mut R, n: usize, moduli: &[Modulus]) -> RnsPoly {
    let coeffs: Vec<i64> = (0..n)
        .map(|_| {
            let a = rng.gen::<u32>() & ((1u32 << CBD_BITS) - 1);
            let b = rng.gen::<u32>() & ((1u32 << CBD_BITS) - 1);
            a.count_ones() as i64 - b.count_ones() as i64
        })
        .collect();
    signed_to_rns(&coeffs, n, moduli)
}

/// Lifts signed coefficients into an [`RnsPoly`] (coefficient form).
pub fn signed_to_rns(coeffs: &[i64], n: usize, moduli: &[Modulus]) -> RnsPoly {
    assert_eq!(coeffs.len(), n, "coefficient count mismatch");
    let mut out = RnsPoly::zero(n, moduli, Representation::Coefficient);
    for (i, p) in moduli.iter().enumerate() {
        for (dst, &c) in out.residue_mut(i).iter_mut().zip(coeffs) {
            *dst = p.reduce_i64(c);
        }
    }
    out
}

fn signs_to_i64(signs: &[i8]) -> Vec<i64> {
    signs.iter().map(|&s| s as i64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::primes::generate_ntt_primes;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mods() -> Vec<Modulus> {
        generate_ntt_primes(30, 2, 64)
            .unwrap()
            .into_iter()
            .map(|p| Modulus::new(p).unwrap())
            .collect()
    }

    #[test]
    fn uniform_in_range_and_nontrivial() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = mods();
        let u = sample_uniform(&mut rng, 1024, &m, Representation::Ntt);
        for (p, res) in u.iter() {
            assert!(res.iter().all(|&c| c < p.value()));
            // Statistically certain: 1024 uniform draws aren't all < p/2.
            assert!(res.iter().any(|&c| c >= p.value() / 2));
        }
        assert_eq!(u.representation(), Representation::Ntt);
    }

    #[test]
    fn ternary_values_consistent_across_residues() {
        let mut rng = StdRng::seed_from_u64(2);
        let m = mods();
        let s = sample_ternary(&mut rng, 256, &m);
        for j in 0..256 {
            let v0 = s.residue(0)[j];
            let v1 = s.residue(1)[j];
            let p0 = m[0].value();
            let p1 = m[1].value();
            let c0: i64 = if v0 == 0 {
                0
            } else if v0 == 1 {
                1
            } else {
                assert_eq!(v0, p0 - 1);
                -1
            };
            let c1: i64 = if v1 == 0 {
                0
            } else if v1 == 1 {
                1
            } else {
                assert_eq!(v1, p1 - 1);
                -1
            };
            assert_eq!(c0, c1);
        }
    }

    #[test]
    fn error_is_small_and_centered() {
        let mut rng = StdRng::seed_from_u64(3);
        let m = mods();
        let n = 8192;
        let e = sample_error(&mut rng, n, &m);
        let p0 = m[0].value();
        let mut sum = 0i64;
        let mut sum_sq = 0f64;
        for &c in e.residue(0) {
            let v: i64 = if c > p0 / 2 {
                c as i64 - p0 as i64
            } else {
                c as i64
            };
            assert!(v.abs() <= CBD_BITS as i64, "CBD(21) bounded by ±21");
            sum += v;
            sum_sq += (v * v) as f64;
        }
        let mean = sum as f64 / n as f64;
        let var = sum_sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.3, "mean {mean} should be near 0");
        assert!(
            (var - 10.5).abs() < 1.5,
            "variance {var} should be near 10.5"
        );
    }

    #[test]
    fn signed_lift_roundtrip() {
        let m = mods();
        let coeffs: Vec<i64> = vec![-3, -1, 0, 1, 2, 5, -7, 9];
        let poly = signed_to_rns(&coeffs, 8, &m);
        for (j, &c) in coeffs.iter().enumerate() {
            assert_eq!(poly.residue(0)[j], m[0].reduce_i64(c));
        }
    }

    #[test]
    fn deterministic_with_seed() {
        let m = mods();
        let a = sample_uniform(
            &mut StdRng::seed_from_u64(42),
            64,
            &m,
            Representation::Coefficient,
        );
        let b = sample_uniform(
            &mut StdRng::seed_from_u64(42),
            64,
            &m,
            Representation::Coefficient,
        );
        assert_eq!(a, b);
    }
}
