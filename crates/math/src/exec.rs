//! Execution backends for per-limb parallelism.
//!
//! Every evaluation-path operation in the full-RNS scheme is independent
//! per RNS component (Section 2 of the paper) — HEAX exploits that by
//! running NTT cores and key-switching pipeline stages concurrently
//! across residues. This module is the software analogue: an
//! [`Executor`] abstraction that dispatches a closure over limb indices,
//! with a [`Sequential`] backend (the deterministic default) and a
//! hand-rolled scoped [`ThreadPool`] built on `std::thread` only (the
//! build is offline; no external thread-pool crates).
//!
//! Both backends produce **bit-identical** results: every parallel
//! region in this workspace writes disjoint per-limb outputs whose
//! values do not depend on execution order, and the property suites
//! assert `ThreadPool(k) == Sequential` for NTT round-trips, dyadic
//! multiplication, and key switching.
//!
//! The process-wide backend is chosen by the `HEAX_THREADS` environment
//! variable (read once, on first use): unset, `0`, or `1` selects
//! [`Sequential`]; `k > 1` selects a shared [`ThreadPool`] with `k`
//! lanes. Structs with a hot path ([`Evaluator`], [`HeaxAccelerator`])
//! also accept an explicit executor through a builder option.
//!
//! [`Evaluator`]: ../../heax_ckks/eval/struct.Evaluator.html
//! [`HeaxAccelerator`]: ../../heax_core/accel/struct.HeaxAccelerator.html

use std::any::Any;
use std::cell::Cell;
use std::fmt;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};
use std::thread::JoinHandle;

/// A backend that executes an indexed task over `0..count`.
///
/// # Contract
///
/// An implementation must invoke `task(i)` **exactly once** for every
/// `i ∈ [0, count)` before `dispatch` returns, and must not let any
/// invocation outlive the call ("scoped" semantics — the task may borrow
/// from the caller's stack). Invocations may run concurrently on any
/// thread. The mutable-slice helpers ([`for_each_limb`] and friends)
/// additionally guard against a misbehaving implementation dispatching
/// an index twice, turning what would be aliasing into a panic.
pub trait Executor: Send + Sync + fmt::Debug {
    /// Number of parallel lanes this executor can use (1 for
    /// [`Sequential`]).
    fn threads(&self) -> usize;

    /// Runs `task(i)` for every `i` in `0..count`; returns once all
    /// invocations have completed.
    fn dispatch(&self, count: usize, task: &(dyn Fn(usize) + Sync));
}

/// The deterministic default backend: runs every index inline, in order,
/// on the calling thread.
#[derive(Clone, Copy, Debug, Default)]
pub struct Sequential;

impl Executor for Sequential {
    fn threads(&self) -> usize {
        1
    }

    fn dispatch(&self, count: usize, task: &(dyn Fn(usize) + Sync)) {
        for i in 0..count {
            task(i);
        }
    }
}

thread_local! {
    /// Set while a thread is executing inside a `dispatch` region; nested
    /// dispatches run inline to keep the pool deadlock-free.
    static IN_DISPATCH: Cell<bool> = const { Cell::new(false) };
}

type Task = dyn Fn(usize) + Sync;

/// A raw, lifetime-erased pointer to the submitter's task closure.
///
/// The pointer is only dereferenced while the submitting
/// [`ThreadPool::dispatch`] call is blocked waiting for completion, so
/// the referent is always alive when used.
#[derive(Clone, Copy)]
struct Job {
    task: *const Task,
    count: usize,
}

// SAFETY: the fat pointer itself is plain data; `dispatch` guarantees the
// pointee (a `Sync` closure) outlives every worker that dereferences it.
unsafe impl Send for Job {}

struct State {
    /// Monotonically increasing job counter; workers use it to tell a
    /// fresh job from one they already ran.
    epoch: u64,
    /// The currently published job, if any.
    job: Option<Job>,
    /// Workers currently executing the published job.
    active: usize,
    /// Set by `Drop`; workers exit on observing it.
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    /// Workers park here waiting for a job.
    work_cv: Condvar,
    /// Submitters park here waiting for completion (or for the slot).
    done_cv: Condvar,
    /// Next index to claim for the current job.
    next: AtomicUsize,
    /// Indices fully executed for the current job.
    finished: AtomicUsize,
    /// Whether any invocation of the current job panicked.
    panicked: AtomicBool,
    /// The first caught panic payload of the current job, re-raised on
    /// the submitting thread so `dispatch` panics with the original
    /// message rather than a generic wrapper.
    payload: Mutex<Option<Box<dyn Any + Send>>>,
}

impl Shared {
    /// Locks the shared state, shrugging off poisoning: the state is a
    /// plain job/epoch counter protected against torn updates by the
    /// lock itself, with no multi-step invariant a panicking thread
    /// could leave half-applied — so a panic elsewhere must not turn
    /// every later dispatch into a confusing poisoned-lock panic.
    fn lock_state(&self) -> MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Waits on a condvar, recovering a poisoned guard the same way as
/// [`Shared::lock_state`].
fn wait<'m>(cv: &Condvar, guard: MutexGuard<'m, State>) -> MutexGuard<'m, State> {
    cv.wait(guard).unwrap_or_else(PoisonError::into_inner)
}

/// A persistent, hand-rolled scoped thread pool over `std::thread`.
///
/// `ThreadPool::new(k)` spawns `k - 1` worker threads; the thread calling
/// [`Executor::dispatch`] participates as the `k`-th lane, so a pool with
/// `k = 1` degenerates to [`Sequential`] with zero spawned threads.
/// Workers park on a condvar between jobs (no busy waiting). Indices are
/// claimed from a shared atomic counter, so lanes load-balance uneven
/// limbs automatically.
///
/// The pool is *scoped*: dispatched closures may borrow from the
/// submitting stack frame, because `dispatch` does not return until every
/// worker has left the job. Panics inside the task are caught on the
/// worker and the first original payload is re-raised on the submitting
/// thread once the dispatch completes; the pool's internal locks recover
/// from poisoning (the guarded state is a plain job counter), so one
/// panicking closure never turns later dispatches into poisoned-lock
/// panics.
pub struct ThreadPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    lanes: usize,
}

impl fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ThreadPool")
            .field("lanes", &self.lanes)
            .finish()
    }
}

impl ThreadPool {
    /// Creates a pool with `threads` total lanes (the caller counts as
    /// one; `threads - 1` OS threads are spawned). `threads` is clamped
    /// to at least 1.
    pub fn new(threads: usize) -> Self {
        let lanes = threads.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                epoch: 0,
                job: None,
                active: 0,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            next: AtomicUsize::new(0),
            finished: AtomicUsize::new(0),
            panicked: AtomicBool::new(false),
            payload: Mutex::new(None),
        });
        let workers = (1..lanes)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("heax-exec-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn heax-exec worker")
            })
            .collect();
        Self {
            shared,
            workers,
            lanes,
        }
    }
}

/// Claims indices from the shared counter and runs them until the job is
/// drained.
fn run_indices(shared: &Shared, task: &(dyn Fn(usize) + Sync + '_), count: usize) {
    loop {
        let i = shared.next.fetch_add(1, Ordering::Relaxed);
        if i >= count {
            break;
        }
        if let Err(p) = panic::catch_unwind(AssertUnwindSafe(|| task(i))) {
            // Keep the first payload; concurrent lanes may panic too, but
            // only one original cause is re-raised on the submitter.
            let mut slot = shared
                .payload
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            if slot.is_none() {
                *slot = Some(p);
            }
            drop(slot);
            shared.panicked.store(true, Ordering::Relaxed);
        }
        if shared.finished.fetch_add(1, Ordering::AcqRel) + 1 == count {
            // Wake the submitter; take the lock so the notification cannot
            // slip between its condition check and its wait.
            let _guard = shared.lock_state();
            shared.done_cv.notify_all();
        }
    }
}

fn worker_loop(shared: &Shared) {
    let mut seen_epoch = 0u64;
    loop {
        let job = {
            let mut st = shared.lock_state();
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch > seen_epoch {
                    seen_epoch = st.epoch;
                    if let Some(job) = st.job {
                        st.active += 1;
                        break job;
                    }
                    // The job was already retired by the submitter; keep
                    // waiting for the next epoch.
                }
                st = wait(&shared.work_cv, st);
            }
        };
        // SAFETY: the submitter blocks until `active` drops back to zero,
        // so the closure behind this pointer is alive for the whole run.
        let task = unsafe { &*job.task };
        IN_DISPATCH.with(|f| f.set(true));
        run_indices(shared, task, job.count);
        IN_DISPATCH.with(|f| f.set(false));
        let mut st = shared.lock_state();
        st.active -= 1;
        if st.active == 0 {
            shared.done_cv.notify_all();
        }
    }
}

impl Executor for ThreadPool {
    fn threads(&self) -> usize {
        self.lanes
    }

    fn dispatch(&self, count: usize, task: &(dyn Fn(usize) + Sync)) {
        // Inline when there is nothing to fan out, no workers to fan out
        // to, or when called from inside another dispatch (nested
        // parallelism would deadlock on the single job slot).
        if count <= 1 || self.workers.is_empty() || IN_DISPATCH.with(Cell::get) {
            for i in 0..count {
                task(i);
            }
            return;
        }
        let shared = &*self.shared;
        {
            let mut st = shared.lock_state();
            while st.job.is_some() {
                // Another thread's job is in flight; queue behind it.
                st = wait(&shared.done_cv, st);
            }
            shared.next.store(0, Ordering::Relaxed);
            shared.finished.store(0, Ordering::Relaxed);
            shared.panicked.store(false, Ordering::Relaxed);
            *shared
                .payload
                .lock()
                .unwrap_or_else(PoisonError::into_inner) = None;
            // SAFETY: lifetime erasure only; this `dispatch` call blocks
            // until no worker holds the pointer, so the closure outlives
            // every dereference.
            let erased: *const Task =
                unsafe { std::mem::transmute(task as *const (dyn Fn(usize) + Sync)) };
            st.job = Some(Job {
                task: erased,
                count,
            });
            st.epoch += 1;
            shared.work_cv.notify_all();
        }
        // The submitting thread is a lane too.
        IN_DISPATCH.with(|f| f.set(true));
        run_indices(shared, task, count);
        IN_DISPATCH.with(|f| f.set(false));
        // Wait until every index ran *and* every worker has left the job
        // (a worker may still hold the job's task pointer after the last
        // index completes).
        let mut st = shared.lock_state();
        while shared.finished.load(Ordering::Acquire) < count || st.active > 0 {
            st = wait(&shared.done_cv, st);
        }
        // Read the panic flag and take the payload before releasing the
        // job slot: a queued submitter resets both as soon as it
        // publishes the next job.
        let panicked = shared.panicked.load(Ordering::Relaxed);
        let payload = shared
            .payload
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take();
        st.job = None;
        shared.done_cv.notify_all(); // release the slot to queued submitters
        drop(st);
        if panicked {
            // Re-raise the original panic (once, on the submitter) so the
            // caller sees the real cause, not a pool-internal wrapper.
            match payload {
                Some(p) => panic::resume_unwind(p),
                None => panic!("heax exec: task panicked during parallel dispatch"),
            }
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.lock_state();
            st.shutdown = true;
            self.shared.work_cv.notify_all();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

/// Builds an executor with `threads` lanes: [`Sequential`] for `threads
/// <= 1`, a [`ThreadPool`] otherwise.
pub fn with_threads(threads: usize) -> Arc<dyn Executor> {
    if threads <= 1 {
        Arc::new(Sequential)
    } else {
        Arc::new(ThreadPool::new(threads))
    }
}

/// Lane count requested by the `HEAX_THREADS` environment variable
/// (`1` when unset, empty, zero, or unparseable).
pub fn env_threads() -> usize {
    std::env::var("HEAX_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&k| k >= 1)
        .unwrap_or(1)
}

static GLOBAL: OnceLock<Arc<dyn Executor>> = OnceLock::new();

/// The process-wide executor, built from `HEAX_THREADS` on first use
/// ([`Sequential`] unless `HEAX_THREADS > 1`). All default-constructed
/// hot paths route through this.
pub fn global() -> &'static Arc<dyn Executor> {
    GLOBAL.get_or_init(|| with_threads(env_threads()))
}

/// Runs `f(i, &mut items[i])` for every index through the executor.
///
/// This is the bridge from the index-based [`Executor::dispatch`] to
/// disjoint mutable borrows: each item is handed to exactly one
/// invocation. A broken executor that dispatches an index twice panics
/// instead of aliasing.
pub fn for_each_mut<T, F>(exec: &dyn Executor, items: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    let count = items.len();
    if count == 0 {
        return;
    }
    // Fast path for single-lane backends (the default): iterate borrows
    // directly, with no claim flags and no pointer erasure. This keeps
    // `Sequential` allocation-free on the hot paths.
    if exec.threads() <= 1 {
        for (i, item) in items.iter_mut().enumerate() {
            f(i, item);
        }
        return;
    }
    struct ItemsPtr<T>(*mut T);
    // SAFETY: shared across lanes, but each element is accessed by
    // exactly one invocation (enforced by `taken` below).
    unsafe impl<T: Send> Sync for ItemsPtr<T> {}
    impl<T> ItemsPtr<T> {
        fn at(&self, i: usize) -> *mut T {
            self.0.wrapping_add(i)
        }
    }
    let base = ItemsPtr(items.as_mut_ptr());
    let taken: Vec<AtomicBool> = (0..count).map(|_| AtomicBool::new(false)).collect();
    exec.dispatch(count, &|i| {
        assert!(
            i < count && !taken[i].swap(true, Ordering::AcqRel),
            "executor dispatched index {i} out of range or more than once"
        );
        // SAFETY: index `i` is in range and claimed exactly once, so this
        // is the only live reference to `items[i]`.
        let item: &mut T = unsafe { &mut *base.at(i) };
        f(i, item);
    });
}

/// Splits `data` into contiguous limbs of `limb_len` words and runs
/// `f(limb_index, limb)` for each through the executor.
///
/// # Panics
///
/// Panics if `data.len()` is not a multiple of `limb_len`.
pub fn for_each_limb<F>(exec: &dyn Executor, data: &mut [u64], limb_len: usize, f: F)
where
    F: Fn(usize, &mut [u64]) + Sync,
{
    assert_eq!(data.len() % limb_len, 0, "data is not whole limbs");
    if exec.threads() <= 1 {
        for (i, limb) in data.chunks_mut(limb_len).enumerate() {
            f(i, limb);
        }
        return;
    }
    let mut limbs: Vec<&mut [u64]> = data.chunks_mut(limb_len).collect();
    for_each_mut(exec, &mut limbs, |i, limb| f(i, limb));
}

/// Runs `f(limb_index, limb_a, limb_b)` over the matching limbs of two
/// equally shaped buffers (e.g. the two key-switch accumulators).
///
/// # Panics
///
/// Panics if the buffers differ in length or are not whole limbs.
pub fn for_each_limb2<F>(exec: &dyn Executor, a: &mut [u64], b: &mut [u64], limb_len: usize, f: F)
where
    F: Fn(usize, &mut [u64], &mut [u64]) + Sync,
{
    assert_eq!(a.len(), b.len(), "limb buffers differ in length");
    assert_eq!(a.len() % limb_len, 0, "data is not whole limbs");
    if exec.threads() <= 1 {
        for (i, (la, lb)) in a
            .chunks_mut(limb_len)
            .zip(b.chunks_mut(limb_len))
            .enumerate()
        {
            f(i, la, lb);
        }
        return;
    }
    let mut pairs: Vec<(&mut [u64], &mut [u64])> =
        a.chunks_mut(limb_len).zip(b.chunks_mut(limb_len)).collect();
    for_each_mut(exec, &mut pairs, |i, (la, lb)| f(i, la, lb));
}

/// Runs `f(limb_index, limb_a, limb_b, limb_c)` over the matching limbs of
/// three equally shaped buffers — the two key-switch accumulators plus a
/// per-limb scratch lane, so each executor lane owns a private reduction
/// buffer without allocating inside the dispatch.
///
/// # Panics
///
/// Panics if the buffers differ in length or are not whole limbs.
pub fn for_each_limb3<F>(
    exec: &dyn Executor,
    a: &mut [u64],
    b: &mut [u64],
    c: &mut [u64],
    limb_len: usize,
    f: F,
) where
    F: Fn(usize, &mut [u64], &mut [u64], &mut [u64]) + Sync,
{
    assert_eq!(a.len(), b.len(), "limb buffers differ in length");
    assert_eq!(a.len(), c.len(), "limb buffers differ in length");
    assert_eq!(a.len() % limb_len, 0, "data is not whole limbs");
    if exec.threads() <= 1 {
        for (i, ((la, lb), lc)) in a
            .chunks_mut(limb_len)
            .zip(b.chunks_mut(limb_len))
            .zip(c.chunks_mut(limb_len))
            .enumerate()
        {
            f(i, la, lb, lc);
        }
        return;
    }
    type Triple<'t> = (&'t mut [u64], (&'t mut [u64], &'t mut [u64]));
    let mut triples: Vec<Triple<'_>> = a
        .chunks_mut(limb_len)
        .zip(b.chunks_mut(limb_len).zip(c.chunks_mut(limb_len)))
        .collect();
    for_each_mut(exec, &mut triples, |i, (la, (lb, lc))| f(i, la, lb, lc));
}

/// Runs `f(limb_index, limb_a, limb_b, limb_c, limb_d)` over the matching
/// limbs of four equally shaped buffers — two outputs plus two private
/// scratch lanes, as used by the paired accumulator floor.
///
/// # Panics
///
/// Panics if the buffers differ in length or are not whole limbs.
pub fn for_each_limb4<F>(
    exec: &dyn Executor,
    a: &mut [u64],
    b: &mut [u64],
    c: &mut [u64],
    d: &mut [u64],
    limb_len: usize,
    f: F,
) where
    F: Fn(usize, &mut [u64], &mut [u64], &mut [u64], &mut [u64]) + Sync,
{
    assert_eq!(a.len(), b.len(), "limb buffers differ in length");
    assert_eq!(a.len(), c.len(), "limb buffers differ in length");
    assert_eq!(a.len(), d.len(), "limb buffers differ in length");
    assert_eq!(a.len() % limb_len, 0, "data is not whole limbs");
    if exec.threads() <= 1 {
        for (i, (((la, lb), lc), ld)) in a
            .chunks_mut(limb_len)
            .zip(b.chunks_mut(limb_len))
            .zip(c.chunks_mut(limb_len))
            .zip(d.chunks_mut(limb_len))
            .enumerate()
        {
            f(i, la, lb, lc, ld);
        }
        return;
    }
    type Quad<'q> = (
        (&'q mut [u64], &'q mut [u64]),
        (&'q mut [u64], &'q mut [u64]),
    );
    let mut quads: Vec<Quad<'_>> = a
        .chunks_mut(limb_len)
        .zip(b.chunks_mut(limb_len))
        .zip(c.chunks_mut(limb_len).zip(d.chunks_mut(limb_len)))
        .collect();
    for_each_mut(exec, &mut quads, |i, ((la, lb), (lc, ld))| {
        f(i, la, lb, lc, ld)
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn sequential_runs_all_indices_in_order() {
        let order = Mutex::new(Vec::new());
        Sequential.dispatch(5, &|i| order.lock().unwrap().push(i));
        assert_eq!(*order.lock().unwrap(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn pool_runs_every_index_exactly_once() {
        let pool = ThreadPool::new(4);
        for count in [0usize, 1, 2, 7, 64, 1000] {
            let hits: Vec<AtomicU64> = (0..count).map(|_| AtomicU64::new(0)).collect();
            pool.dispatch(count, &|i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            assert!(
                hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                "count={count}"
            );
        }
    }

    #[test]
    fn pool_reuses_workers_across_jobs() {
        let pool = ThreadPool::new(3);
        let total = AtomicU64::new(0);
        for _ in 0..50 {
            pool.dispatch(16, &|i| {
                total.fetch_add(i as u64, Ordering::Relaxed);
            });
        }
        assert_eq!(total.load(Ordering::Relaxed), 50 * (0..16).sum::<u64>());
    }

    #[test]
    fn pool_of_one_lane_is_inline() {
        let pool = ThreadPool::new(1);
        assert_eq!(pool.threads(), 1);
        let main_id = std::thread::current().id();
        pool.dispatch(8, &|_| assert_eq!(std::thread::current().id(), main_id));
    }

    #[test]
    fn nested_dispatch_runs_inline_without_deadlock() {
        let pool = ThreadPool::new(2);
        let total = AtomicU64::new(0);
        pool.dispatch(4, &|_| {
            pool.dispatch(4, &|_| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(total.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn pool_mutates_borrowed_stack_data() {
        let pool = ThreadPool::new(4);
        let mut data: Vec<u64> = (0..256).collect();
        for_each_limb(&pool, &mut data, 16, |i, limb| {
            for (j, x) in limb.iter_mut().enumerate() {
                *x = *x * 2 + i as u64 + j as u64;
            }
        });
        let expect: Vec<u64> = (0..256u64).map(|v| v * 2 + v / 16 + v % 16).collect();
        assert_eq!(data, expect);
    }

    #[test]
    fn for_each_limb3_triples_match() {
        for exec in [with_threads(1), with_threads(3)] {
            let mut a = vec![1u64; 32];
            let mut b = vec![2u64; 32];
            let mut c = vec![0u64; 32];
            for_each_limb3(exec.as_ref(), &mut a, &mut b, &mut c, 8, |i, la, lb, lc| {
                for ((x, y), z) in la.iter_mut().zip(lb.iter_mut()).zip(lc.iter_mut()) {
                    *x += i as u64;
                    *y += *x;
                    *z = *x + *y;
                }
            });
            for i in 0..4u64 {
                assert!(a[i as usize * 8..(i as usize + 1) * 8]
                    .iter()
                    .all(|&x| x == 1 + i));
                assert!(b[i as usize * 8..(i as usize + 1) * 8]
                    .iter()
                    .all(|&y| y == 3 + i));
                assert!(c[i as usize * 8..(i as usize + 1) * 8]
                    .iter()
                    .all(|&z| z == 4 + 2 * i));
            }
        }
    }

    #[test]
    fn for_each_limb4_quads_match() {
        for exec in [with_threads(1), with_threads(3)] {
            let mut a = vec![1u64; 32];
            let mut b = vec![2u64; 32];
            let mut c = vec![0u64; 32];
            let mut d = vec![0u64; 32];
            for_each_limb4(
                exec.as_ref(),
                &mut a,
                &mut b,
                &mut c,
                &mut d,
                8,
                |i, la, lb, lc, ld| {
                    for (((x, y), z), w) in la
                        .iter_mut()
                        .zip(lb.iter_mut())
                        .zip(lc.iter_mut())
                        .zip(ld.iter_mut())
                    {
                        *x += i as u64;
                        *y += *x;
                        *z = *x + *y;
                        *w = *z + 1;
                    }
                },
            );
            for i in 0..4u64 {
                let r = i as usize * 8..(i as usize + 1) * 8;
                assert!(a[r.clone()].iter().all(|&x| x == 1 + i));
                assert!(b[r.clone()].iter().all(|&y| y == 3 + i));
                assert!(c[r.clone()].iter().all(|&z| z == 4 + 2 * i));
                assert!(d[r].iter().all(|&w| w == 5 + 2 * i));
            }
        }
    }

    #[test]
    fn for_each_limb2_pairs_match() {
        let exec = ThreadPool::new(3);
        let mut a = vec![1u64; 32];
        let mut b = vec![2u64; 32];
        for_each_limb2(&exec, &mut a, &mut b, 8, |i, la, lb| {
            for (x, y) in la.iter_mut().zip(lb.iter_mut()) {
                *x += i as u64;
                *y += *x;
            }
        });
        for i in 0..4 {
            assert!(a[i * 8..(i + 1) * 8].iter().all(|&x| x == 1 + i as u64));
            assert!(b[i * 8..(i + 1) * 8].iter().all(|&y| y == 3 + i as u64));
        }
    }

    #[test]
    fn panics_propagate_to_the_submitter() {
        let pool = ThreadPool::new(2);
        let result = panic::catch_unwind(AssertUnwindSafe(|| {
            pool.dispatch(8, &|i| {
                if i == 3 {
                    panic!("boom");
                }
            });
        }));
        assert!(result.is_err());
        // The pool stays usable after a task panic.
        let hits = AtomicU64::new(0);
        pool.dispatch(8, &|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn panic_payload_is_propagated_verbatim() {
        let pool = ThreadPool::new(2);
        let result = panic::catch_unwind(AssertUnwindSafe(|| {
            pool.dispatch(8, &|i| {
                if i == 2 {
                    panic::panic_any("original-cause");
                }
            });
        }));
        let payload = result.expect_err("dispatch must re-raise");
        assert_eq!(
            payload.downcast_ref::<&str>().copied(),
            Some("original-cause"),
            "the submitter must see the task's own payload, not a wrapper"
        );
        // A later job is clean: no stale payload, no poisoned locks.
        let result = panic::catch_unwind(AssertUnwindSafe(|| {
            pool.dispatch(8, &|i| {
                if i == 5 {
                    panic::panic_any(format!("second cause: {i}"));
                }
            });
        }));
        let payload = result.expect_err("second dispatch must re-raise too");
        assert_eq!(
            payload.downcast_ref::<String>().map(String::as_str),
            Some("second cause: 5")
        );
        let hits = AtomicU64::new(0);
        pool.dispatch(4, &|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn concurrent_submitters_share_one_pool() {
        let pool = Arc::new(ThreadPool::new(2));
        let total = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let pool = Arc::clone(&pool);
                let total = Arc::clone(&total);
                std::thread::spawn(move || {
                    for _ in 0..20 {
                        pool.dispatch(8, &|_| {
                            total.fetch_add(1, Ordering::Relaxed);
                        });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(total.load(Ordering::Relaxed), 4 * 20 * 8);
    }

    #[test]
    fn with_threads_picks_backend() {
        assert_eq!(with_threads(0).threads(), 1);
        assert_eq!(with_threads(1).threads(), 1);
        assert_eq!(with_threads(4).threads(), 4);
        assert_eq!(global().threads(), env_threads());
    }
}
