//! RNS polynomials: elements of `R_q = Z_q[X]/(X^n+1)` stored as one
//! residue polynomial per modulus.
//!
//! Each residue polynomial is a length-`n` `u64` vector; the whole element
//! is stored modulus-major (residue 0 first), matching the paper's
//! observation that all evaluation arithmetic is independent per RNS
//! component (Section 2). A [`Representation`] tag tracks whether the
//! element is in coefficient or NTT form, and every operation validates the
//! forms of its operands — mixing forms is a programming error that this
//! library surfaces as [`MathError::RepresentationMismatch`].

use crate::exec::{self, Executor};
use crate::ntt::NttTable;
use crate::word::Modulus;
use crate::MathError;

/// Whether a polynomial is in coefficient (time) or NTT (evaluation) form.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Representation {
    /// Natural coefficient order.
    Coefficient,
    /// Bit-reversed evaluation order (the "NTT form" ciphertexts default to).
    Ntt,
}

/// A polynomial in RNS representation: `k` residue polynomials of degree
/// `< n`.
///
/// # Examples
///
/// ```
/// use heax_math::poly::{RnsPoly, Representation};
/// use heax_math::word::Modulus;
///
/// # fn main() -> Result<(), heax_math::MathError> {
/// let mods = vec![Modulus::new(97)?, Modulus::new(193)?];
/// let mut a = RnsPoly::zero(8, &mods, Representation::Coefficient);
/// a.residue_mut(0)[0] = 5;
/// a.residue_mut(1)[0] = 5;
/// let b = a.clone();
/// let sum = a.add(&b)?;
/// assert_eq!(sum.residue(0)[0], 10);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RnsPoly {
    n: usize,
    moduli: Vec<Modulus>,
    data: Vec<u64>,
    repr: Representation,
}

impl RnsPoly {
    /// The all-zero polynomial over the given moduli.
    pub fn zero(n: usize, moduli: &[Modulus], repr: Representation) -> Self {
        Self {
            n,
            moduli: moduli.to_vec(),
            data: vec![0u64; n * moduli.len()],
            repr,
        }
    }

    /// Builds from raw residue data (modulus-major, `k*n` words).
    ///
    /// # Errors
    ///
    /// Returns [`MathError::LengthMismatch`] if `data.len() != n·k`.
    pub fn from_data(
        n: usize,
        moduli: &[Modulus],
        data: Vec<u64>,
        repr: Representation,
    ) -> Result<Self, MathError> {
        if data.len() != n * moduli.len() {
            return Err(MathError::LengthMismatch {
                expected: n * moduli.len(),
                got: data.len(),
            });
        }
        Ok(Self {
            n,
            moduli: moduli.to_vec(),
            data,
            repr,
        })
    }

    /// Ring degree.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of RNS components.
    #[inline]
    pub fn num_residues(&self) -> usize {
        self.moduli.len()
    }

    /// The moduli.
    #[inline]
    pub fn moduli(&self) -> &[Modulus] {
        &self.moduli
    }

    /// Current representation.
    #[inline]
    pub fn representation(&self) -> Representation {
        self.repr
    }

    /// Overrides the representation tag without touching data. Used by the
    /// hardware simulators, which perform the transforms themselves.
    #[inline]
    pub fn set_representation(&mut self, repr: Representation) {
        self.repr = repr;
    }

    /// Residue polynomial `i` (length `n`).
    #[inline]
    pub fn residue(&self, i: usize) -> &[u64] {
        &self.data[i * self.n..(i + 1) * self.n]
    }

    /// Mutable residue polynomial `i`.
    #[inline]
    pub fn residue_mut(&mut self, i: usize) -> &mut [u64] {
        &mut self.data[i * self.n..(i + 1) * self.n]
    }

    /// All residue data, modulus-major.
    #[inline]
    pub fn data(&self) -> &[u64] {
        &self.data
    }

    /// All residue data, mutable. Limb `i` occupies `data[i·n..(i+1)·n]`;
    /// used by the parallel backends to hand disjoint limbs to lanes.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [u64] {
        &mut self.data
    }

    /// Iterator over `(modulus, residue)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&Modulus, &[u64])> {
        self.moduli.iter().zip(self.data.chunks_exact(self.n))
    }

    fn check_compatible(&self, other: &Self) -> Result<(), MathError> {
        if self.n != other.n || self.moduli.len() != other.moduli.len() {
            return Err(MathError::LengthMismatch {
                expected: self.n * self.moduli.len(),
                got: other.n * other.moduli.len(),
            });
        }
        for (a, b) in self.moduli.iter().zip(&other.moduli) {
            if a.value() != b.value() {
                return Err(MathError::BasisMismatch {
                    a: a.value(),
                    b: b.value(),
                });
            }
        }
        if self.repr != other.repr {
            return Err(MathError::RepresentationMismatch);
        }
        Ok(())
    }

    /// Coefficient-wise sum.
    ///
    /// # Errors
    ///
    /// Returns an error if degrees, moduli, or representations differ.
    pub fn add(&self, other: &Self) -> Result<Self, MathError> {
        self.check_compatible(other)?;
        let mut out = self.clone();
        out.add_assign(other)?;
        Ok(out)
    }

    /// In-place coefficient-wise sum, limbs dispatched through the
    /// global executor (see [`crate::exec`]).
    ///
    /// # Errors
    ///
    /// Same as [`RnsPoly::add`].
    pub fn add_assign(&mut self, other: &Self) -> Result<(), MathError> {
        self.add_assign_with(other, exec::global().as_ref())
    }

    /// In-place coefficient-wise sum through an explicit executor.
    ///
    /// # Errors
    ///
    /// Same as [`RnsPoly::add`].
    pub fn add_assign_with(&mut self, other: &Self, exec: &dyn Executor) -> Result<(), MathError> {
        self.check_compatible(other)?;
        let n = self.n;
        exec::for_each_limb(exec, &mut self.data, n, |i, dst| {
            let p = &self.moduli[i];
            for (d, &s) in dst.iter_mut().zip(other.residue(i)) {
                *d = p.add_mod(*d, s);
            }
        });
        Ok(())
    }

    /// Coefficient-wise difference.
    ///
    /// # Errors
    ///
    /// Same as [`RnsPoly::add`].
    pub fn sub(&self, other: &Self) -> Result<Self, MathError> {
        self.sub_with(other, exec::global().as_ref())
    }

    /// Coefficient-wise difference through an explicit executor.
    ///
    /// # Errors
    ///
    /// Same as [`RnsPoly::add`].
    pub fn sub_with(&self, other: &Self, exec: &dyn Executor) -> Result<Self, MathError> {
        self.check_compatible(other)?;
        let mut out = self.clone();
        let n = out.n;
        exec::for_each_limb(exec, &mut out.data, n, |i, dst| {
            let p = &self.moduli[i];
            for (d, &s) in dst.iter_mut().zip(other.residue(i)) {
                *d = p.sub_mod(*d, s);
            }
        });
        Ok(out)
    }

    /// Negation.
    pub fn neg(&self) -> Self {
        let mut out = self.clone();
        let n = out.n;
        exec::for_each_limb(exec::global().as_ref(), &mut out.data, n, |i, dst| {
            let p = &self.moduli[i];
            for d in dst.iter_mut() {
                *d = p.neg_mod(*d);
            }
        });
        out
    }

    /// Dyadic (coefficient-wise) product — the core operation of the MULT
    /// module. Both operands must be in NTT form for this to realize ring
    /// multiplication.
    ///
    /// # Errors
    ///
    /// Returns an error on degree/modulus/representation mismatch.
    pub fn dyadic_mul(&self, other: &Self) -> Result<Self, MathError> {
        self.check_compatible(other)?;
        let mut out = self.clone();
        out.dyadic_mul_assign(other)?;
        Ok(out)
    }

    /// In-place dyadic product.
    ///
    /// # Errors
    ///
    /// Same as [`RnsPoly::dyadic_mul`].
    pub fn dyadic_mul_assign(&mut self, other: &Self) -> Result<(), MathError> {
        self.dyadic_mul_assign_with(other, exec::global().as_ref())
    }

    /// In-place dyadic product through an explicit executor.
    ///
    /// # Errors
    ///
    /// Same as [`RnsPoly::dyadic_mul`].
    pub fn dyadic_mul_assign_with(
        &mut self,
        other: &Self,
        exec: &dyn Executor,
    ) -> Result<(), MathError> {
        self.check_compatible(other)?;
        let n = self.n;
        exec::for_each_limb(exec, &mut self.data, n, |i, dst| {
            let p = &self.moduli[i];
            for (d, &s) in dst.iter_mut().zip(other.residue(i)) {
                *d = p.mul_mod(*d, s);
            }
        });
        Ok(())
    }

    /// Writes the dyadic product `a ⊙ b` into `self`, overwriting previous
    /// contents — the workspace variant that spares callers a
    /// `clone()`-then-multiply memcpy.
    ///
    /// # Errors
    ///
    /// Returns an error on degree/modulus/representation mismatch.
    pub fn dyadic_mul_set_with(
        &mut self,
        a: &Self,
        b: &Self,
        exec: &dyn Executor,
    ) -> Result<(), MathError> {
        self.check_compatible(a)?;
        self.check_compatible(b)?;
        let n = self.n;
        exec::for_each_limb(exec, &mut self.data, n, |i, dst| {
            let p = &self.moduli[i];
            let sa = a.residue(i);
            let sb = b.residue(i);
            for ((d, &x), &y) in dst.iter_mut().zip(sa).zip(sb) {
                *d = p.mul_mod(x, y);
            }
        });
        Ok(())
    }

    /// Fused multiply-accumulate `self += a ⊙ b` (dyadic), the DyadMult +
    /// accumulate step of the KeySwitch datapath (Algorithm 7, lines 11-12).
    ///
    /// # Errors
    ///
    /// Returns an error on degree/modulus/representation mismatch.
    pub fn dyadic_mul_acc(&mut self, a: &Self, b: &Self) -> Result<(), MathError> {
        self.dyadic_mul_acc_with(a, b, exec::global().as_ref())
    }

    /// Fused dyadic multiply-accumulate through an explicit executor.
    ///
    /// # Errors
    ///
    /// Returns an error on degree/modulus/representation mismatch.
    pub fn dyadic_mul_acc_with(
        &mut self,
        a: &Self,
        b: &Self,
        exec: &dyn Executor,
    ) -> Result<(), MathError> {
        self.check_compatible(a)?;
        self.check_compatible(b)?;
        let n = self.n;
        exec::for_each_limb(exec, &mut self.data, n, |i, dst| {
            let p = &self.moduli[i];
            let sa = a.residue(i);
            let sb = b.residue(i);
            for ((d, &x), &y) in dst.iter_mut().zip(sa).zip(sb) {
                *d = p.add_mod(*d, p.mul_mod(x, y));
            }
        });
        Ok(())
    }

    /// Multiplies every residue `i` by scalar `scalars[i]`.
    ///
    /// # Panics
    ///
    /// Panics if `scalars.len() != self.num_residues()`.
    pub fn scale_per_residue(&mut self, scalars: &[u64]) {
        assert_eq!(scalars.len(), self.moduli.len());
        let n = self.n;
        exec::for_each_limb(exec::global().as_ref(), &mut self.data, n, |i, dst| {
            let p = &self.moduli[i];
            let s = p.reduce_u64(scalars[i]);
            for d in dst.iter_mut() {
                *d = p.mul_mod(*d, s);
            }
        });
    }

    /// Applies the forward NTT to every residue using the matching tables.
    ///
    /// Uses the lazy-reduction kernel (bit-identical output, ~4× faster)
    /// whenever the modulus permits it, as SEAL's production kernels do.
    /// Limbs are dispatched through the global executor.
    ///
    /// # Errors
    ///
    /// [`MathError::RepresentationMismatch`] if already in NTT form;
    /// [`MathError::BasisMismatch`] if `tables` do not match the moduli.
    pub fn ntt_forward(&mut self, tables: &[NttTable]) -> Result<(), MathError> {
        self.ntt_forward_with(tables, exec::global().as_ref())
    }

    /// Forward NTT of every residue through an explicit executor.
    ///
    /// # Errors
    ///
    /// Same as [`RnsPoly::ntt_forward`].
    pub fn ntt_forward_with(
        &mut self,
        tables: &[NttTable],
        exec: &dyn Executor,
    ) -> Result<(), MathError> {
        if self.repr == Representation::Ntt {
            return Err(MathError::RepresentationMismatch);
        }
        self.check_tables(tables)?;
        crate::ntt::forward_limbs(exec, &tables[..self.moduli.len()], &mut self.data, self.n);
        self.repr = Representation::Ntt;
        Ok(())
    }

    /// Applies the inverse NTT to every residue.
    ///
    /// # Errors
    ///
    /// [`MathError::RepresentationMismatch`] if already in coefficient form;
    /// [`MathError::BasisMismatch`] on table/modulus mismatch.
    pub fn ntt_inverse(&mut self, tables: &[NttTable]) -> Result<(), MathError> {
        self.ntt_inverse_with(tables, exec::global().as_ref())
    }

    /// Inverse NTT of every residue through an explicit executor.
    ///
    /// # Errors
    ///
    /// Same as [`RnsPoly::ntt_inverse`].
    pub fn ntt_inverse_with(
        &mut self,
        tables: &[NttTable],
        exec: &dyn Executor,
    ) -> Result<(), MathError> {
        if self.repr == Representation::Coefficient {
            return Err(MathError::RepresentationMismatch);
        }
        self.check_tables(tables)?;
        crate::ntt::inverse_limbs(exec, &tables[..self.moduli.len()], &mut self.data, self.n);
        self.repr = Representation::Coefficient;
        Ok(())
    }

    fn check_tables(&self, tables: &[NttTable]) -> Result<(), MathError> {
        if tables.len() < self.moduli.len() {
            return Err(MathError::LengthMismatch {
                expected: self.moduli.len(),
                got: tables.len(),
            });
        }
        for (p, t) in self.moduli.iter().zip(tables) {
            if t.modulus().value() != p.value() || t.n() != self.n {
                return Err(MathError::BasisMismatch {
                    a: p.value(),
                    b: t.modulus().value(),
                });
            }
        }
        Ok(())
    }

    /// Drops the last residue polynomial, returning it. Used by rescaling.
    ///
    /// # Panics
    ///
    /// Panics if only one residue remains.
    pub fn pop_residue(&mut self) -> (Modulus, Vec<u64>) {
        assert!(self.moduli.len() > 1, "cannot drop the last residue");
        let p = self.moduli.pop().expect("non-empty");
        let tail = self.data.split_off(self.moduli.len() * self.n);
        (p, tail)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::primes::generate_ntt_primes;

    fn mods() -> Vec<Modulus> {
        generate_ntt_primes(30, 2, 16)
            .unwrap()
            .into_iter()
            .map(|p| Modulus::new(p).unwrap())
            .collect()
    }

    fn tables(mods: &[Modulus]) -> Vec<NttTable> {
        mods.iter()
            .map(|&m| NttTable::new(16, m).unwrap())
            .collect()
    }

    #[test]
    fn zero_is_zero() {
        let m = mods();
        let z = RnsPoly::zero(16, &m, Representation::Coefficient);
        assert!(z.data().iter().all(|&x| x == 0));
        assert_eq!(z.num_residues(), 2);
        assert_eq!(z.n(), 16);
    }

    #[test]
    fn add_sub_roundtrip() {
        let m = mods();
        let mut a = RnsPoly::zero(16, &m, Representation::Coefficient);
        let mut b = RnsPoly::zero(16, &m, Representation::Coefficient);
        for (i, p) in m.iter().enumerate() {
            for j in 0..16 {
                a.residue_mut(i)[j] = (j as u64 * 31 + i as u64) % p.value();
                b.residue_mut(i)[j] = (j as u64 * 17 + 3) % p.value();
            }
        }
        let s = a.add(&b).unwrap();
        let back = s.sub(&b).unwrap();
        assert_eq!(back, a);
        let z = a.sub(&a).unwrap();
        assert!(z.data().iter().all(|&x| x == 0));
        assert_eq!(a.add(&a.neg()).unwrap().data(), z.data());
    }

    #[test]
    fn representation_mismatch_rejected() {
        let m = mods();
        let a = RnsPoly::zero(16, &m, Representation::Coefficient);
        let b = RnsPoly::zero(16, &m, Representation::Ntt);
        assert!(matches!(a.add(&b), Err(MathError::RepresentationMismatch)));
    }

    #[test]
    fn basis_mismatch_rejected() {
        let m = mods();
        let other = generate_ntt_primes(31, 2, 16)
            .unwrap()
            .into_iter()
            .map(|p| Modulus::new(p).unwrap())
            .collect::<Vec<_>>();
        let a = RnsPoly::zero(16, &m, Representation::Coefficient);
        let b = RnsPoly::zero(16, &other, Representation::Coefficient);
        assert!(a.add(&b).is_err());
    }

    #[test]
    fn ntt_mul_matches_schoolbook() {
        let m = mods();
        let ts = tables(&m);
        let n = 16usize;
        let mut a = RnsPoly::zero(n, &m, Representation::Coefficient);
        let mut b = RnsPoly::zero(n, &m, Representation::Coefficient);
        for (i, p) in m.iter().enumerate() {
            for j in 0..n {
                a.residue_mut(i)[j] = (j as u64 + 1) % p.value();
                b.residue_mut(i)[j] = (j as u64 * j as u64 + 2) % p.value();
            }
        }
        // Schoolbook negacyclic per residue.
        let mut expect = RnsPoly::zero(n, &m, Representation::Coefficient);
        for (i, p) in m.iter().enumerate() {
            for x in 0..n {
                for y in 0..n {
                    let prod = p.mul_mod(a.residue(i)[x], b.residue(i)[y]);
                    let k = x + y;
                    if k < n {
                        expect.residue_mut(i)[k] = p.add_mod(expect.residue(i)[k], prod);
                    } else {
                        expect.residue_mut(i)[k - n] = p.sub_mod(expect.residue(i)[k - n], prod);
                    }
                }
            }
        }
        let mut ta = a.clone();
        let mut tb = b.clone();
        ta.ntt_forward(&ts).unwrap();
        tb.ntt_forward(&ts).unwrap();
        let mut prod = ta.dyadic_mul(&tb).unwrap();
        prod.ntt_inverse(&ts).unwrap();
        assert_eq!(prod, expect);
    }

    #[test]
    fn dyadic_mul_set_overwrites() {
        let m = mods();
        let mut out = RnsPoly::zero(16, &m, Representation::Ntt);
        out.residue_mut(0)[0] = 999; // stale contents must be overwritten
        let mut a = RnsPoly::zero(16, &m, Representation::Ntt);
        let mut b = RnsPoly::zero(16, &m, Representation::Ntt);
        a.residue_mut(0)[3] = 7;
        b.residue_mut(0)[3] = 9;
        out.dyadic_mul_set_with(&a, &b, &crate::exec::Sequential)
            .unwrap();
        assert_eq!(out, a.dyadic_mul(&b).unwrap());
    }

    #[test]
    fn dyadic_mul_acc_accumulates() {
        let m = mods();
        let mut acc = RnsPoly::zero(16, &m, Representation::Ntt);
        let mut a = RnsPoly::zero(16, &m, Representation::Ntt);
        let mut b = RnsPoly::zero(16, &m, Representation::Ntt);
        a.residue_mut(0)[3] = 7;
        b.residue_mut(0)[3] = 9;
        acc.dyadic_mul_acc(&a, &b).unwrap();
        acc.dyadic_mul_acc(&a, &b).unwrap();
        assert_eq!(acc.residue(0)[3], 2 * 63 % m[0].value());
    }

    #[test]
    fn double_forward_rejected() {
        let m = mods();
        let ts = tables(&m);
        let mut a = RnsPoly::zero(16, &m, Representation::Coefficient);
        a.ntt_forward(&ts).unwrap();
        assert!(a.ntt_forward(&ts).is_err());
        a.ntt_inverse(&ts).unwrap();
        assert!(a.ntt_inverse(&ts).is_err());
    }

    #[test]
    fn pop_residue_shrinks() {
        let m = mods();
        let mut a = RnsPoly::zero(16, &m, Representation::Coefficient);
        a.residue_mut(1)[5] = 42;
        let (p, tail) = a.pop_residue();
        assert_eq!(p.value(), m[1].value());
        assert_eq!(tail[5], 42);
        assert_eq!(a.num_residues(), 1);
    }
}
