//! Word-level modular arithmetic.
//!
//! This module implements the two reduction algorithms the HEAX paper builds
//! every datapath on:
//!
//! * **Algorithm 1 (standard Barrett reduction)** — [`Modulus::reduce_u128`]
//!   reduces a double-word value `x ∈ [0, (p-1)²]` using the precomputed
//!   constant `u = ⌊2^{2w}/p⌋`.
//! * **Algorithm 2 (optimized modular multiplication)** — [`MulRedConstant`]
//!   precomputes `y' = ⌊y·2^w/p⌋` for a fixed operand `y` (e.g. a twiddle
//!   factor) so that `x·y mod p` needs only two single-word multiplications
//!   and one subtraction. The paper calls this `MulRed`.
//!
//! The HEAX hardware uses `w = 54`-bit native words (two 27-bit DSPs); the
//! software baseline (Microsoft SEAL) uses `w = 64`. We store residues in
//! `u64` and parameterize the correctness bound the way SEAL does: Algorithm 2
//! requires `p < 2^{w-2} = 2^62`. The hardware models in `heax-hw` separately
//! enforce the 52-bit bound of the 54-bit datapath.

use core::fmt;

use crate::MathError;

/// Maximum bit size of a modulus accepted by [`Modulus::new`].
///
/// Algorithm 2 requires `p < 2^{w-2}`; with `w = 64` words that is 62 bits.
pub const MAX_MODULUS_BITS: u32 = 62;

/// A word-sized prime (or odd) modulus with precomputed Barrett constants.
///
/// The precomputed ratio is `⌊2^128 / p⌋`, stored as two 64-bit words. This
/// is the `u = ⌊2^{2w}/p⌋` of Algorithm 1 with `w = 64`.
///
/// # Examples
///
/// ```
/// use heax_math::word::Modulus;
///
/// # fn main() -> Result<(), heax_math::MathError> {
/// let p = Modulus::new(1152921504606830593)?; // 60-bit NTT-friendly prime
/// assert_eq!(p.mul_mod(p.value() - 1, p.value() - 1), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Modulus {
    value: u64,
    bits: u32,
    /// `⌊2^128 / value⌋`, low word.
    ratio_lo: u64,
    /// `⌊2^128 / value⌋`, high word.
    ratio_hi: u64,
    /// `(value + 1) / 2`, the inverse of 2 modulo `value` (value is odd).
    inv_two: u64,
}

impl fmt::Debug for Modulus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Modulus")
            .field("value", &self.value)
            .field("bits", &self.bits)
            .finish()
    }
}

impl fmt::Display for Modulus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.value)
    }
}

impl Modulus {
    /// Creates a modulus with precomputed Barrett constants.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::InvalidModulus`] if `value < 2`, `value` is even,
    /// or `value` needs more than [`MAX_MODULUS_BITS`] bits (the Algorithm 2
    /// correctness bound `p < 2^{w-2}`).
    pub fn new(value: u64) -> Result<Self, MathError> {
        if value < 3 || value.is_multiple_of(2) {
            return Err(MathError::InvalidModulus { value });
        }
        let bits = 64 - value.leading_zeros();
        if bits > MAX_MODULUS_BITS {
            return Err(MathError::InvalidModulus { value });
        }
        // floor(2^128 / p) == floor((2^128 - 1) / p) because p (odd, > 1)
        // never divides 2^128.
        let ratio = u128::MAX / value as u128;
        Ok(Self {
            value,
            bits,
            ratio_lo: ratio as u64,
            ratio_hi: (ratio >> 64) as u64,
            inv_two: (value + 1) >> 1,
        })
    }

    /// The modulus value `p`.
    #[inline]
    pub fn value(&self) -> u64 {
        self.value
    }

    /// Number of significant bits in `p`.
    #[inline]
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// The Barrett ratio `⌊2^128/p⌋` as `(lo, hi)` words.
    #[inline]
    pub fn barrett_ratio(&self) -> (u64, u64) {
        (self.ratio_lo, self.ratio_hi)
    }

    /// Reduces a single word `x < 2^64` modulo `p` (Algorithm 1, single-word
    /// input). Uses only the high ratio word, exactly like SEAL's
    /// `barrett_reduce_64`.
    #[inline]
    pub fn reduce_u64(&self, x: u64) -> u64 {
        // q = floor(x * floor(2^128/p) / 2^128) approximated by the high
        // ratio word; error is at most one subtraction.
        let q = ((x as u128 * self.ratio_hi as u128) >> 64) as u64;
        let r = x.wrapping_sub(q.wrapping_mul(self.value));
        if r >= self.value {
            r - self.value
        } else {
            r
        }
    }

    /// Reduces a double word `x < 2^128` modulo `p` (Algorithm 1,
    /// double-word input; SEAL's `barrett_reduce_128`).
    #[inline]
    pub fn reduce_u128(&self, x: u128) -> u64 {
        let x_lo = x as u64;
        let x_hi = (x >> 64) as u64;

        // Compute floor(x * ratio / 2^128): we need the 128..192 bit window
        // of the 256-bit product; only its low word matters for Barrett.
        // Round 1: x_lo * ratio.
        let carry = ((x_lo as u128 * self.ratio_lo as u128) >> 64) as u64;
        let tmp2 = x_lo as u128 * self.ratio_hi as u128;
        let tmp1 = (tmp2 as u64).overflowing_add(carry);
        let tmp3 = ((tmp2 >> 64) as u64).wrapping_add(tmp1.1 as u64);
        // Round 2: x_hi * ratio.
        let tmp2 = x_hi as u128 * self.ratio_lo as u128;
        let sum = (tmp2 as u64).overflowing_add(tmp1.0);
        let carry2 = ((tmp2 >> 64) as u64).wrapping_add(sum.1 as u64);
        // Low word of floor(x*ratio/2^128):
        let q = x_hi
            .wrapping_mul(self.ratio_hi)
            .wrapping_add(tmp3)
            .wrapping_add(carry2);

        let r = x_lo.wrapping_sub(q.wrapping_mul(self.value));
        if r >= self.value {
            r - self.value
        } else {
            r
        }
    }

    /// `x + y mod p` for `x, y < p`.
    #[inline]
    pub fn add_mod(&self, x: u64, y: u64) -> u64 {
        debug_assert!(x < self.value && y < self.value);
        let s = x + y;
        if s >= self.value {
            s - self.value
        } else {
            s
        }
    }

    /// `x - y mod p` for `x, y < p`.
    #[inline]
    pub fn sub_mod(&self, x: u64, y: u64) -> u64 {
        debug_assert!(x < self.value && y < self.value);
        if x >= y {
            x - y
        } else {
            x + self.value - y
        }
    }

    /// `-x mod p` for `x < p`.
    #[inline]
    pub fn neg_mod(&self, x: u64) -> u64 {
        debug_assert!(x < self.value);
        if x == 0 {
            0
        } else {
            self.value - x
        }
    }

    /// `x · y mod p` for `x, y < p`, via double-word Barrett reduction.
    #[inline]
    pub fn mul_mod(&self, x: u64, y: u64) -> u64 {
        self.reduce_u128(x as u128 * y as u128)
    }

    /// `x / 2 mod p` for `x < p` (`p` odd). This is the halving step of the
    /// paper's INTT butterfly (Algorithm 4, line 5).
    #[inline]
    pub fn div2_mod(&self, x: u64) -> u64 {
        debug_assert!(x < self.value);
        if x & 1 == 0 {
            x >> 1
        } else {
            (x >> 1) + self.inv_two
        }
    }

    /// `2^{-1} mod p`.
    #[inline]
    pub fn inv_two(&self) -> u64 {
        self.inv_two
    }

    /// `x^e mod p` by square-and-multiply.
    pub fn pow_mod(&self, x: u64, mut e: u64) -> u64 {
        let mut base = self.reduce_u64(x);
        let mut acc = 1u64;
        while e > 0 {
            if e & 1 == 1 {
                acc = self.mul_mod(acc, base);
            }
            base = self.mul_mod(base, base);
            e >>= 1;
        }
        acc
    }

    /// `x^{-1} mod p` for prime `p`, via Fermat's little theorem.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::NotInvertible`] if `x ≡ 0 (mod p)`.
    pub fn inv_mod(&self, x: u64) -> Result<u64, MathError> {
        let x = self.reduce_u64(x);
        if x == 0 {
            return Err(MathError::NotInvertible {
                value: x,
                modulus: self.value,
            });
        }
        let inv = self.pow_mod(x, self.value - 2);
        // Guard against a composite modulus sneaking in: verify.
        if self.mul_mod(inv, x) != 1 {
            return Err(MathError::NotInvertible {
                value: x,
                modulus: self.value,
            });
        }
        Ok(inv)
    }

    /// Reduces a signed value into `[0, p)`.
    #[inline]
    pub fn reduce_i64(&self, x: i64) -> u64 {
        if x >= 0 {
            self.reduce_u64(x as u64)
        } else {
            // -x may overflow for i64::MIN; widen first.
            let r = self.reduce_u128((-(x as i128)) as u128);
            self.neg_mod(r)
        }
    }

    /// Reduces a signed double word into `[0, p)`.
    #[inline]
    pub fn reduce_i128(&self, x: i128) -> u64 {
        if x >= 0 {
            self.reduce_u128(x as u128)
        } else {
            let r = self.reduce_u128(x.unsigned_abs());
            self.neg_mod(r)
        }
    }
}

/// A fixed multiplicand `y` with the precomputed quotient `y' = ⌊y·2^64/p⌋`
/// of Algorithm 2 (the paper's `MulRed`).
///
/// Used for all constants known ahead of time: twiddle factors, `p^{-1}`
/// factors in rescaling, gadget factors in key switching.
///
/// # Examples
///
/// ```
/// use heax_math::word::{Modulus, MulRedConstant};
///
/// # fn main() -> Result<(), heax_math::MathError> {
/// let p = Modulus::new(4611686018326724609)?;
/// let y = MulRedConstant::new(12345, &p);
/// assert_eq!(y.mul_red(678, &p), p.mul_mod(12345, 678));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MulRedConstant {
    operand: u64,
    quotient: u64,
}

impl MulRedConstant {
    /// Precomputes `y' = ⌊y·2^64/p⌋` for operand `y < p`.
    ///
    /// # Panics
    ///
    /// Debug-asserts `y < p`.
    #[inline]
    pub fn new(y: u64, modulus: &Modulus) -> Self {
        debug_assert!(y < modulus.value());
        let quotient = (((y as u128) << 64) / modulus.value() as u128) as u64;
        Self {
            operand: y,
            quotient,
        }
    }

    /// The operand `y`.
    #[inline]
    pub fn operand(&self) -> u64 {
        self.operand
    }

    /// The precomputed quotient `⌊y·2^64/p⌋`.
    #[inline]
    pub fn quotient(&self) -> u64 {
        self.quotient
    }

    /// Algorithm 2: `x·y mod p` with one high-word and two low-word
    /// multiplications.
    #[inline]
    pub fn mul_red(&self, x: u64, modulus: &Modulus) -> u64 {
        let r = self.mul_red_lazy(x, modulus); // DOMAIN: [0,2p)
        if r >= modulus.value() {
            r - modulus.value()
        } else {
            r
        }
    }

    /// Algorithm 2 without the final conditional subtraction; the result is
    /// in `[0, 2p)`. Useful for lazy-reduction pipelines (the hardware NTT
    /// core defers the correction to a later pipeline stage).
    #[inline]
    // DOMAIN: [0,2p)
    pub fn mul_red_lazy(&self, x: u64, modulus: &Modulus) -> u64 {
        // t <- floor(x*y'/2^64): the upper word of the product (Alg. 2 l.2).
        let t = ((x as u128 * self.quotient as u128) >> 64) as u64;
        // z <- x*y - t*p (mod 2^64): two lower-word products (l.1, l.3, l.4).
        x.wrapping_mul(self.operand)
            .wrapping_sub(t.wrapping_mul(modulus.value()))
    }
}

/// Precomputes a [`MulRedConstant`] table for a slice of fixed operands —
/// the software analogue of loading Shoup-form key material into the
/// MulRed units' constant banks. All values must be `< p`.
pub fn precompute_shoup(values: &[u64], modulus: &Modulus) -> Vec<MulRedConstant> {
    values
        .iter()
        .map(|&y| MulRedConstant::new(y, modulus))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p60() -> Modulus {
        Modulus::new(1152921504606830593).unwrap()
    }

    #[test]
    fn new_rejects_bad_moduli() {
        assert!(Modulus::new(0).is_err());
        assert!(Modulus::new(1).is_err());
        assert!(Modulus::new(2).is_err());
        assert!(Modulus::new(4).is_err());
        // 63-bit value exceeds MAX_MODULUS_BITS.
        assert!(Modulus::new((1u64 << 62) + 1).is_err());
        assert!(Modulus::new((1u64 << 61) + 1).is_ok());
    }

    #[test]
    fn reduce_u64_matches_rem() {
        let p = p60();
        for &x in &[0u64, 1, p.value() - 1, p.value(), p.value() + 1, u64::MAX] {
            assert_eq!(p.reduce_u64(x), x % p.value());
        }
    }

    #[test]
    fn reduce_u128_matches_rem() {
        let p = p60();
        let cases: [u128; 6] = [
            0,
            1,
            p.value() as u128 * p.value() as u128,
            (p.value() as u128 - 1) * (p.value() as u128 - 1),
            u128::from(u64::MAX) * 3 + 7,
            u128::MAX % (p.value() as u128 * p.value() as u128),
        ];
        for &x in &cases {
            assert_eq!(p.reduce_u128(x) as u128, x % p.value() as u128);
        }
    }

    #[test]
    fn add_sub_neg_roundtrip() {
        let p = p60();
        let a = 987654321987654321 % p.value();
        let b = 123456789123456789 % p.value();
        assert_eq!(p.sub_mod(p.add_mod(a, b), b), a);
        assert_eq!(p.add_mod(a, p.neg_mod(a)), 0);
        assert_eq!(p.neg_mod(0), 0);
    }

    #[test]
    fn mul_red_agrees_with_barrett() {
        let p = p60();
        let ys = [1u64, 2, 3, p.value() - 1, 0x1234_5678_9abc];
        let xs = [0u64, 1, 7, p.value() - 1, 0xdead_beef_1234];
        for &y in &ys {
            let c = MulRedConstant::new(y, &p);
            for &x in &xs {
                assert_eq!(c.mul_red(x, &p), p.mul_mod(x, y), "x={x} y={y}");
            }
        }
    }

    #[test]
    fn mul_red_lazy_is_within_2p() {
        let p = p60();
        let c = MulRedConstant::new(p.value() - 1, &p);
        for x in (0..1000u64).map(|i| i.wrapping_mul(0x9e3779b97f4a7c15) % p.value()) {
            let lazy = c.mul_red_lazy(x, &p);
            assert!(lazy < 2 * p.value());
            let exact = if lazy >= p.value() {
                lazy - p.value()
            } else {
                lazy
            };
            assert_eq!(exact, p.mul_mod(x, p.value() - 1));
        }
    }

    #[test]
    fn precompute_shoup_matches_scalar_constants() {
        let p = p60();
        let ys = [0u64, 1, 7, p.value() - 1];
        let table = precompute_shoup(&ys, &p);
        for (c, &y) in table.iter().zip(&ys) {
            assert_eq!(*c, MulRedConstant::new(y, &p));
            assert_eq!(c.mul_red(12345, &p), p.mul_mod(12345, y));
        }
    }

    #[test]
    fn div2_halves() {
        let p = p60();
        for &x in &[0u64, 1, 2, 3, p.value() - 1, p.value() - 2] {
            let h = p.div2_mod(x);
            assert_eq!(p.add_mod(h, h), x);
        }
    }

    #[test]
    fn pow_and_inv() {
        let p = p60();
        assert_eq!(p.pow_mod(2, 10), 1024);
        assert_eq!(p.pow_mod(0, 0), 1);
        let x = 0x0123_4567_89ab_cdef % p.value();
        let inv = p.inv_mod(x).unwrap();
        assert_eq!(p.mul_mod(x, inv), 1);
        assert!(p.inv_mod(0).is_err());
    }

    #[test]
    fn reduce_signed() {
        let p = p60();
        assert_eq!(p.reduce_i64(-1), p.value() - 1);
        assert_eq!(p.reduce_i64(5), 5);
        assert_eq!(p.reduce_i128(-(p.value() as i128) - 3), p.value() - 3);
        assert_eq!(p.reduce_i64(i64::MIN), {
            let m = (i64::MIN as i128).unsigned_abs() % p.value() as u128;
            p.neg_mod(m as u64)
        });
    }
}
