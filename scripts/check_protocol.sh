#!/usr/bin/env bash
# Consistency gate between the normative docs and the source of truth.
#
# PROTOCOL.md pins wire constants (error codes, message kinds, op codes,
# versions) and EXPERIMENTS.md pins the BENCH_*.json schema names; both
# are prose, so nothing stops them drifting from the code. This script
# re-derives every pinned value from the Rust source and greps the docs
# for it, failing loudly on any mismatch. CI runs it in the docs job;
# run it locally with: bash scripts/check_protocol.sh
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0
err() {
    echo "check_protocol: $*" >&2
    fail=1
}

# Extracts "Name Value" pairs from a `#[repr(..)]` enum block: lines of
# the form `    Variant = 7,` between `pub enum <name> {` and its `}`.
enum_pairs() { # file enum_name
    awk -v enum="pub enum $2" '
        $0 ~ enum { in_enum = 1; next }
        in_enum && /^}/ { exit }
        in_enum && /^[[:space:]]+[A-Za-z]+ = [0-9]+,/ {
            gsub(/[=,]/, ""); print $1, $2
        }
    ' "$1"
}

# Every enum row must appear in PROTOCOL.md as a table row `| value | name |`.
check_enum_table() { # file enum_name
    while read -r name value; do
        if ! grep -Eq "^\| *${value} *\| *${name}" PROTOCOL.md; then
            err "PROTOCOL.md is missing the $2 row: $name = $value"
        fi
    done < <(enum_pairs "$1" "$2")
}

check_enum_table crates/server/src/error.rs ErrorCode
check_enum_table crates/server/src/wire.rs MessageKind
check_enum_table crates/server/src/wire.rs OpCode

# The error-code table must not list codes the source does not define.
# The variant names are re-derived from the enum (not hardcoded here),
# so adding an ErrorCode without its PROTOCOL.md row fails this check
# instead of silently shrinking it.
err_names=$(enum_pairs crates/server/src/error.rs ErrorCode | awk '{print $1}' | paste -sd'|' -)
doc_codes=$(grep -Eo '^\| *[0-9]+ *\| *[A-Za-z]+ *\|' PROTOCOL.md |
    awk -F'|' -v names="^(${err_names})\$" '{gsub(/ /,"",$3)} $3 ~ names {gsub(/ /,"",$2); print $2}' | sort -n)
src_codes=$(enum_pairs crates/server/src/error.rs ErrorCode | awk '{print $2}' | sort -n)
if [ "$doc_codes" != "$src_codes" ]; then
    err "PROTOCOL.md error-code table disagrees with ErrorCode: doc={$doc_codes} src={$src_codes}"
fi

# Wire constants PROTOCOL.md states in prose.
grep -q 'WIRE_V1: u8 = 1' crates/server/src/wire.rs || err "WIRE_V1 is no longer 1; update PROTOCOL.md §1.2"
grep -q 'WIRE_V2: u8 = 2' crates/server/src/wire.rs || err "WIRE_V2 is no longer 2; update PROTOCOL.md §1.2"
grep -q 'REQUEST_FLAG_COMPRESS_REPLY: u8 = 0b0000_0001' crates/server/src/wire.rs ||
    err "REQUEST_FLAG_COMPRESS_REPLY is no longer 0x01; update PROTOCOL.md §2"
grep -q 'FRAME_HEADER_LEN: usize = 4 + 1 + 1 + 8 + 8 + 4' crates/server/src/wire.rs ||
    err "FRAME_HEADER_LEN changed; update the PROTOCOL.md §1 frame table"
grep -q 'The header is 26 bytes' PROTOCOL.md || err "PROTOCOL.md no longer states the 26-byte header"
grep -Fq '*b"HEAW"' crates/server/src/wire.rs || err "frame magic is no longer HEAW; update PROTOCOL.md"
grep -Fq '*b"HEAX"' crates/ckks/src/serialize.rs || err "object magic is no longer HEAX; update PROTOCOL.md"
grep -q 'EXPAND_SEED_LEN: usize = 32' crates/math/src/sampling.rs ||
    err "EXPAND_SEED_LEN is no longer 32; update PROTOCOL.md §4.4"
grep -q 'SeededCiphertext = 7' crates/ckks/src/serialize.rs ||
    err "the seeded-ciphertext tag is no longer 7; update PROTOCOL.md §4"

# Every BENCH_*.json schema name the bench crate emits must be
# documented verbatim in EXPERIMENTS.md.
while read -r schema; do
    if ! grep -qF "$schema" EXPERIMENTS.md; then
        err "EXPERIMENTS.md does not document snapshot schema '$schema'"
    fi
done < <(grep -rhoE 'heax-bench-[a-z]+/[0-9]+' crates/bench/src | sort -u)

if [ "$fail" -ne 0 ]; then
    echo "check_protocol: FAILED — docs and source have drifted" >&2
    exit 1
fi
echo "check_protocol: OK (error codes, kinds, ops, wire constants, schema names)"
